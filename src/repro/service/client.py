"""Asyncio client for the reservation daemon's admission API.

One :class:`ServiceClient` talks to one daemon.  Admission calls share
a small keep-alive connection pool: a socket is opened on demand,
parked after a ``Connection: keep-alive`` response, and reused by the
next request (``keep_alive=False`` restores the historical
``Connection: close`` exchange per request).  A request that finds its
pooled socket already closed by the daemon is retried once on a fresh
connection -- only when the old socket died before yielding any
response bytes, so the request cannot have been executed twice.
:attr:`ServiceClient.connections_opened` and
:attr:`ServiceClient.connections_reused` count the raw socket traffic
(the load generator surfaces them in its report).

:meth:`events` upgrades a dedicated connection to the WebSocket event
plane and yields event dicts until either side closes.

The client is also the reference consumer of the wire protocol: the
daemon's tests drive every endpoint through it.

When a trace context is bound (see :mod:`repro.obs.context`), every
request carries W3C-style ``traceparent`` and ``x-request-id`` headers
derived from it, and the exchange is recorded as a ``client.request``
span on the installed tracer -- that is how the daemon's spans and the
caller's spans end up sharing a trace id, which ``repro-obs stitch``
later joins into one cross-process timeline.  Without a bound context
the wire format is byte-for-byte what it always was.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import AsyncIterator, Dict, List, Optional, Tuple

from repro.obs import context as _context
from repro.obs import trace as _trace
from repro.service import http as _http

__all__ = [
    "ServiceClient",
    "ServiceResponse",
    "ServiceClientError",
    "ServiceDrainingError",
]


class ServiceClientError(RuntimeError):
    """The daemon answered with an error status (carries the body)."""

    def __init__(self, status: int, payload: object) -> None:
        super().__init__(f"HTTP {status}: {payload}")
        self.status = status
        self.payload = payload


class ServiceDrainingError(ServiceClientError):
    """The daemon refused the request because it is shutting down.

    A drain refusal is not an admission verdict: the cluster router
    treats it as "this shard is leaving, don't count the session as
    rejected on merit" and callers may retry elsewhere.
    """


def _is_draining(status: int, payload: object) -> bool:
    """Recognize the daemon's 503 drain-refusal body."""
    if status != 503 or not isinstance(payload, dict):
        return False
    if payload.get("draining") is True:
        return True
    return "shutting down" in str(payload.get("error", ""))


class _ConnectionLost(Exception):
    """A (pooled) socket died before any response bytes arrived."""


@dataclass(frozen=True)
class ServiceResponse:
    """One parsed HTTP response."""

    status: int
    headers: Dict[str, str]
    body: bytes

    def json(self) -> object:
        return json.loads(self.body.decode("utf-8")) if self.body else None


class ServiceClient:
    """Talks to one :class:`~repro.service.daemon.ReservationDaemon`."""

    def __init__(self, host: str, port: int, *, keep_alive: bool = True) -> None:
        self.host = host
        self.port = port
        self.keep_alive = keep_alive
        self._pool: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        #: Raw sockets opened so far (pool misses + ``Connection: close``).
        self.connections_opened = 0
        #: Requests served over a previously used socket.
        self.connections_reused = 0

    # -- connection pool ---------------------------------------------------

    async def _acquire(self) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter, bool]:
        """A (reader, writer, reused) triple: pooled if possible."""
        while self._pool:
            reader, writer = self._pool.pop()
            if writer.is_closing():
                await _close_writer(writer)
                continue
            self.connections_reused += 1
            return reader, writer, True
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self.connections_opened += 1
        return reader, writer, False

    def _release(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._pool.append((reader, writer))

    async def aclose(self) -> None:
        """Close every pooled connection (call when done with the client)."""
        while self._pool:
            _, writer = self._pool.pop()
            await _close_writer(writer)

    # -- raw exchange ------------------------------------------------------

    async def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        *,
        headers: Optional[Dict[str, str]] = None,
    ) -> ServiceResponse:
        """One request/response exchange (pooled connection when possible)."""
        body = b""
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head_lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            "Connection: keep-alive" if self.keep_alive else "Connection: close",
            f"Content-Length: {len(body)}",
            "Content-Type: application/json",
        ]
        merged = dict(headers or {})
        context = _context.current_trace_context()
        if context is not None:
            # A fresh span id per request keeps retries distinguishable
            # on the daemon side while staying inside the same trace.
            child = _context.child_context(context, request_id=context.request_id)
            merged.setdefault(_context.TRACEPARENT_HEADER, child.traceparent())
            if child.request_id is not None:
                merged.setdefault(_context.REQUEST_ID_HEADER, child.request_id)
        for name, value in merged.items():
            head_lines.append(f"{name}: {value}")
        wire = ("\r\n".join(head_lines) + "\r\n\r\n").encode("latin-1") + body
        with _trace.span("client.request") as span:
            span.set(method=method, path=path)
            for attempt in (0, 1):
                reader, writer, reused = await self._acquire()
                try:
                    writer.write(wire)
                    await writer.drain()
                    response = await _read_response(reader)
                except (_ConnectionLost, ConnectionError, OSError):
                    # The daemon may close an idle pooled socket at any
                    # time; that is only safe to retry when no response
                    # bytes arrived (the request never executed).
                    if reused:
                        self.connections_reused -= 1
                    await _close_writer(writer)
                    if reused and attempt == 0:
                        continue
                    raise
                keep = (
                    self.keep_alive
                    and response.headers.get("connection", "").lower() != "close"
                )
                if keep:
                    self._release(reader, writer)
                else:
                    await _close_writer(writer)
                span.set(status=response.status)
                return response
            raise AssertionError("unreachable")  # pragma: no cover

    async def _call(self, method: str, path: str, payload: Optional[dict] = None):
        response = await self.request(method, path, payload)
        document = response.json()
        if response.status != 200:
            if _is_draining(response.status, document):
                raise ServiceDrainingError(response.status, document)
            raise ServiceClientError(response.status, document)
        return document

    # -- admission API -----------------------------------------------------

    async def establish(self, **fields) -> dict:
        """``POST /v1/establish`` (service=, domain=, session_id=, ...)."""
        return await self._call("POST", "/v1/establish", fields)

    async def establish_batch(self, arrivals: List[dict]) -> List[dict]:
        """``POST /v1/establish_batch`` over a list of arrival dicts."""
        return await self._call(
            "POST", "/v1/establish_batch", {"arrivals": arrivals}
        )

    async def renegotiate(self, session_id: str, *, trigger: str = "api") -> dict:
        return await self._call(
            "POST", "/v1/renegotiate", {"session_id": session_id, "trigger": trigger}
        )

    async def teardown(self, session_id: str) -> dict:
        return await self._call("POST", "/v1/teardown", {"session_id": session_id})

    # -- cluster 2PC API ---------------------------------------------------

    async def availability(self) -> dict:
        """``GET /v1/availability`` -- the daemon's owned-resource view."""
        return await self._call("GET", "/v1/availability")

    async def reserve(self, session_id: str, demands: Dict[str, float]) -> dict:
        """``POST /v1/reserve`` -- hold capacity on a TTL lease."""
        return await self._call(
            "POST", "/v1/reserve", {"session_id": session_id, "demands": demands}
        )

    async def commit(self, lease_id: str, session: Optional[dict] = None) -> dict:
        """``POST /v1/commit`` -- make a lease permanent."""
        payload: dict = {"lease_id": lease_id}
        if session is not None:
            payload["session"] = session
        return await self._call("POST", "/v1/commit", payload)

    async def abort(self, lease_id: str) -> dict:
        """``POST /v1/abort`` -- release a lease's holds (idempotent)."""
        return await self._call("POST", "/v1/abort", {"lease_id": lease_id})

    async def query(self, session_id: Optional[str] = None) -> dict:
        path = "/v1/query"
        if session_id is not None:
            path += f"?session_id={session_id}"
        return await self._call("GET", path)

    async def healthz(self) -> dict:
        return await self._call("GET", "/healthz")

    async def metrics(self) -> str:
        """The raw Prometheus exposition text from ``/metrics``."""
        response = await self.request("GET", "/metrics")
        if response.status != 200:
            raise ServiceClientError(response.status, response.body)
        return response.body.decode("utf-8")

    # -- the event plane ---------------------------------------------------

    async def events(
        self, *, queue: Optional[int] = None, handshake_timeout: float = 10.0
    ) -> AsyncIterator[dict]:
        """Subscribe to ``/v1/events``; yields event dicts until closed.

        ``queue`` requests a specific per-subscriber bound from the
        daemon (the slow-consumer tests use a tiny one).  The iterator
        ends when the daemon closes the stream; callers cancel the
        surrounding task to unsubscribe early.
        """
        path = "/v1/events" + (f"?queue={queue}" if queue is not None else "")
        key = "cmVwcm8tc2VydmljZS1ldnQ="  # any base64 16-byte nonce works
        head = (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n"
            "\r\n"
        )
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write(head.encode("latin-1"))
            await writer.drain()
            status_line = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=handshake_timeout
            )
            if b" 101 " not in status_line.split(b"\r\n", 1)[0]:
                raise ServiceClientError(400, status_line.decode("latin-1", "replace"))
            expected = _http.websocket_accept_key(key).encode("latin-1")
            if expected not in status_line:
                raise ServiceClientError(400, "bad Sec-WebSocket-Accept")
            while True:
                opcode, payload = await _http.read_ws_frame(reader)
                if opcode == _http.OP_CLOSE:
                    return
                if opcode == _http.OP_PING:
                    writer.write(
                        _http.encode_ws_frame(payload, opcode=_http.OP_PONG, mask=True)
                    )
                    await writer.drain()
                    continue
                if opcode in (_http.OP_TEXT, _http.OP_BINARY):
                    yield json.loads(payload.decode("utf-8"))
        except (_http.ProtocolError, ConnectionError):
            return
        finally:
            try:
                writer.write(_http.encode_ws_frame(b"", opcode=_http.OP_CLOSE, mask=True))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover
                pass


async def _close_writer(writer: asyncio.StreamWriter) -> None:
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):  # pragma: no cover
        pass


async def _read_response(reader: asyncio.StreamReader) -> ServiceResponse:
    """Parse one HTTP response (Content-Length framed)."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise _ConnectionLost() from exc
        raise _http.ProtocolError("connection closed before response head") from exc
    lines = head.decode("latin-1").split("\r\n")
    try:
        status = int(lines[0].split(" ", 2)[1])
    except (IndexError, ValueError) as exc:
        raise _http.ProtocolError(f"malformed status line {lines[0]!r}") from exc
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length")
    if length_text is not None:
        body = await reader.readexactly(int(length_text))
    else:
        body = await reader.read()
    return ServiceResponse(status=status, headers=headers, body=body)
