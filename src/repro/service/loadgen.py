"""Open-loop load generator: WorkloadSpec arrivals as concurrent clients.

Replays the §5.1 Poisson arrival process against a live
:class:`~repro.service.daemon.ReservationDaemon`: every
:class:`~repro.sim.workload.SessionArrival` becomes one HTTP client that
fires its ``/v1/establish`` at ``arrival_time * time_scale`` seconds
after start *regardless of how earlier requests are doing* (open loop --
the daemon's queueing shows up as admission latency, exactly what a
closed loop would hide).  Admitted sessions optionally hold their
reservation for a scaled duration and then tear down.

The run distils into a :class:`LoadReport` whose :meth:`headline
<LoadReport.headline>` feeds the committed ``BENCH_service_load``
telemetry ledger: throughput and admission-latency percentiles keyed so
the ledger diff gate treats them as runner-dependent timings, plus the
deterministic session count as a structural leaf.

Also runnable standalone against an already-running daemon::

    repro-serve --port 8787 &
    python -m repro.service.loadgen --port 8787 --rate 600 --horizon 30
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.des.rng import RandomStreams
from repro.obs import context as _context
from repro.obs import trace as _trace
from repro.obs.export import observability_to_dict
from repro.service.client import ServiceClient, ServiceClientError
from repro.sim.workload import SessionArrival, WorkloadGenerator, WorkloadSpec

__all__ = ["LoadGenConfig", "LoadReport", "arrival_payload", "run_load", "main"]


def arrival_payload(arrival: SessionArrival) -> dict:
    """The wire form of one workload arrival.

    The daemon reconstructs a :class:`SessionArrival` from this payload
    and converts it with :meth:`SessionArrival.to_session_request` once
    the binding is known -- the two halves of the workload-to-protocol
    converter the load generator rides on.
    """
    return {
        "session_id": arrival.session_id,
        "service": arrival.service,
        "domain": arrival.domain,
        "demand_scale": arrival.demand_scale,
        "duration": arrival.duration,
        "arrival_time": arrival.arrival_time,
    }


@dataclass(frozen=True)
class LoadGenConfig:
    """One load run: the workload to replay and how fast to replay it."""

    #: The arrival process (TU-denominated, exactly as in simulation).
    workload: WorkloadSpec = field(
        default_factory=lambda: WorkloadSpec(rate_per_60tu=600.0, horizon=30.0)
    )
    seed: int = 7
    #: Wall seconds per workload TU (0.01 = a 60 TU horizon in 0.6 s).
    time_scale: float = 0.01
    #: Hold admitted reservations for ``duration * time_scale`` wall
    #: seconds (capped) before tearing down; 0 tears down immediately.
    max_hold_seconds: float = 0.25
    #: Tear admitted sessions down at all (off = leak them on purpose).
    teardown: bool = True
    #: Stop after this many arrivals (None = the full horizon).
    max_sessions: Optional[int] = None
    #: Send arrivals in establish_batch groups of this size instead of
    #: one establish per client (1 = plain per-session open loop).
    batch: int = 1
    #: Bind a fresh root trace context per arrival (per group when
    #: batching) so every request carries ``traceparent`` headers, and
    #: record client-side spans into a run-local tracer; the run's
    #: :class:`LoadReport` then carries a schema-v4 trace document ready
    #: for ``repro-obs stitch`` against the daemon's flight dump.
    trace: bool = False

    def __post_init__(self) -> None:
        if self.time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {self.time_scale!r}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch!r}")


@dataclass
class LoadReport:
    """What one open-loop run measured."""

    sessions: int
    admitted: int
    rejected: int
    errors: int
    torn_down: int
    wall_seconds: float
    latencies_ms: List[float]
    peak_inflight: int
    #: Raw sockets the client opened vs. requests served over a reused
    #: keep-alive connection (the satellite win this report evidences).
    connections_opened: int = 0
    connection_reuses: int = 0
    #: Client-side schema-v4 trace document (tracing runs only); stays
    #: out of :meth:`to_dict` so the telemetry ledger shape is untouched.
    trace_document: Optional[dict] = None

    @property
    def throughput(self) -> float:
        """Completed admission decisions per wall second."""
        if self.wall_seconds <= 0:
            return 0.0
        return (self.admitted + self.rejected) / self.wall_seconds

    def percentile_ms(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_ms), q))

    def headline(self) -> Dict[str, float]:
        """Ledger headline: structural counts + timing-keyed latencies.

        Keys carrying wall-clock facts embed a timing fragment
        (``wall``/``_ms``/``seconds``) so ``repro-obs diff`` gates them
        per runner fingerprint instead of structurally.
        """
        return {
            "sessions": self.sessions,
            "wall_seconds": self.wall_seconds,
            "throughput_per_wall_second": self.throughput,
            "admission_latency_p50_ms": self.percentile_ms(50),
            "admission_latency_p90_ms": self.percentile_ms(90),
            "admission_latency_p99_ms": self.percentile_ms(99),
            "admission_latency_max_ms": self.percentile_ms(100),
            "admission_latency_mean_ms": (
                float(np.mean(self.latencies_ms)) if self.latencies_ms else 0.0
            ),
        }

    def environment(self) -> Dict[str, str]:
        """Run facts that document, but never gate (order-dependent)."""
        return {
            "admitted": str(self.admitted),
            "rejected": str(self.rejected),
            "errors": str(self.errors),
            "torn_down": str(self.torn_down),
            "peak_inflight": str(self.peak_inflight),
            "connections_opened": str(self.connections_opened),
            "connection_reuses": str(self.connection_reuses),
        }

    def to_dict(self) -> dict:
        document = dict(self.headline())
        document.update({k: int(v) for k, v in self.environment().items()})
        return document


class _Tracker:
    """Shared counters across the open-loop client tasks."""

    def __init__(self) -> None:
        self.admitted = 0
        self.rejected = 0
        self.errors = 0
        self.torn_down = 0
        self.latencies_ms: List[float] = []
        self.inflight = 0
        self.peak_inflight = 0

    def enter(self) -> None:
        self.inflight += 1
        self.peak_inflight = max(self.peak_inflight, self.inflight)

    def leave(self) -> None:
        self.inflight -= 1


async def run_load(host: str, port: int, config: LoadGenConfig) -> LoadReport:
    """Replay the configured workload against a live daemon."""
    generator = WorkloadGenerator(config.workload, RandomStreams(config.seed))
    arrivals = list(generator.generate())
    if config.max_sessions is not None:
        arrivals = arrivals[: config.max_sessions]
    client = ServiceClient(host, port)
    tracker = _Tracker()
    tracer = _trace.Tracer() if config.trace else None
    previous_tracer = _trace.active_tracer()
    if tracer is not None:
        _trace.install(tracer)
    started = _time.perf_counter()
    try:
        if config.batch > 1:
            groups = [
                arrivals[i : i + config.batch]
                for i in range(0, len(arrivals), config.batch)
            ]
            tasks = [
                asyncio.create_task(
                    _batch_client(client, group, config, tracker, started)
                )
                for group in groups
            ]
        else:
            tasks = [
                asyncio.create_task(
                    _one_client(client, arrival, config, tracker, started)
                )
                for arrival in arrivals
            ]
        if tasks:
            await asyncio.gather(*tasks)
    finally:
        await client.aclose()
        if tracer is not None:
            if previous_tracer is None:
                _trace.uninstall()
            else:
                # In-process runs (tests) have the daemon's flight
                # tracer installed; put it back when we are done.
                _trace.install(previous_tracer)
    wall = _time.perf_counter() - started
    trace_document = None
    if tracer is not None:
        trace_document = observability_to_dict(
            tracer,
            meta={
                "side": "client",
                "loadgen_seed": str(config.seed),
                "loadgen_sessions": str(len(arrivals)),
            },
        )
    return LoadReport(
        sessions=len(arrivals),
        admitted=tracker.admitted,
        rejected=tracker.rejected,
        errors=tracker.errors,
        torn_down=tracker.torn_down,
        wall_seconds=wall,
        latencies_ms=tracker.latencies_ms,
        peak_inflight=tracker.peak_inflight,
        connections_opened=client.connections_opened,
        connection_reuses=client.connections_reused,
        trace_document=trace_document,
    )


async def _pace(arrival_time: float, config: LoadGenConfig, started: float) -> None:
    """Sleep until the arrival's scheduled open-loop fire time."""
    due = arrival_time * config.time_scale
    delay = due - (_time.perf_counter() - started)
    if delay > 0:
        await asyncio.sleep(delay)


async def _one_client(
    client: ServiceClient,
    arrival: SessionArrival,
    config: LoadGenConfig,
    tracker: _Tracker,
    started: float,
) -> None:
    await _pace(arrival.arrival_time, config, started)
    tracker.enter()
    token = None
    if config.trace:
        # One root context per arrival: establish, hold and teardown all
        # share the trace id, so the stitched timeline covers the whole
        # session lifecycle.
        token = _context.bind_trace_context(
            _context.new_trace_context(request_id=arrival.session_id)
        )
    try:
        sent = _time.perf_counter()
        try:
            with _trace.span("loadgen.establish") as span:
                span.set(session=arrival.session_id, service=arrival.service)
                outcome = await client.establish(**arrival_payload(arrival))
        except (ServiceClientError, ConnectionError, OSError):
            tracker.errors += 1
            return
        tracker.latencies_ms.append((_time.perf_counter() - sent) * 1e3)
        if not outcome.get("success"):
            tracker.rejected += 1
            return
        tracker.admitted += 1
        await _hold_and_teardown(client, arrival, config, tracker)
    finally:
        if token is not None:
            _context.reset_trace_context(token)
        tracker.leave()


async def _batch_client(
    client: ServiceClient,
    group: List[SessionArrival],
    config: LoadGenConfig,
    tracker: _Tracker,
    started: float,
) -> None:
    """One client submitting a whole batch at its first arrival's time."""
    await _pace(group[0].arrival_time, config, started)
    tracker.enter()
    token = None
    if config.trace:
        token = _context.bind_trace_context(
            _context.new_trace_context(
                request_id=f"batch-{group[0].session_id}"
            )
        )
    try:
        sent = _time.perf_counter()
        try:
            with _trace.span("loadgen.establish_batch") as span:
                span.set(
                    session=group[0].session_id, batch_size=len(group)
                )
                outcomes = await client.establish_batch(
                    [arrival_payload(arrival) for arrival in group]
                )
        except (ServiceClientError, ConnectionError, OSError):
            tracker.errors += len(group)
            return
        tracker.latencies_ms.append((_time.perf_counter() - sent) * 1e3)
        holders = []
        for arrival, outcome in zip(group, outcomes):
            if outcome.get("success"):
                tracker.admitted += 1
                holders.append(
                    _hold_and_teardown(client, arrival, config, tracker)
                )
            else:
                tracker.rejected += 1
        if holders:
            await asyncio.gather(*holders)
    finally:
        if token is not None:
            _context.reset_trace_context(token)
        tracker.leave()


async def _hold_and_teardown(
    client: ServiceClient,
    arrival: SessionArrival,
    config: LoadGenConfig,
    tracker: _Tracker,
) -> None:
    if not config.teardown:
        return
    hold = min(arrival.duration * config.time_scale, config.max_hold_seconds)
    if hold > 0:
        await asyncio.sleep(hold)
    try:
        await client.teardown(arrival.session_id)
        tracker.torn_down += 1
    except (ServiceClientError, ConnectionError, OSError):
        tracker.errors += 1


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.service.loadgen`` -- drive a running daemon."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787)
    parser.add_argument("--rate", type=float, default=600.0,
                        help="sessions per 60 TU (workload rate)")
    parser.add_argument("--horizon", type=float, default=30.0,
                        help="workload horizon in TU")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--time-scale", type=float, default=0.01,
                        help="wall seconds per workload TU")
    parser.add_argument("--max-hold", type=float, default=0.25,
                        help="cap on scaled reservation hold, seconds")
    parser.add_argument("--max-sessions", type=int, default=None)
    parser.add_argument("--batch", type=int, default=1,
                        help="establish_batch group size (1 = per-session)")
    parser.add_argument("--no-teardown", action="store_true")
    parser.add_argument("--out", default=None,
                        help="write the report JSON here")
    parser.add_argument("--trace-json", default=None,
                        help="trace every request and write the client-side "
                             "trace document (schema v4) here; stitch it "
                             "against the daemon's flight dump with "
                             "'repro-obs stitch'")
    args = parser.parse_args(argv)

    config = LoadGenConfig(
        workload=WorkloadSpec(rate_per_60tu=args.rate, horizon=args.horizon),
        seed=args.seed,
        time_scale=args.time_scale,
        max_hold_seconds=args.max_hold,
        teardown=not args.no_teardown,
        max_sessions=args.max_sessions,
        batch=args.batch,
        trace=args.trace_json is not None,
    )
    report = asyncio.run(run_load(args.host, args.port, config))
    document = report.to_dict()
    text = json.dumps(document, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
    if args.trace_json and report.trace_document is not None:
        with open(args.trace_json, "w") as handle:
            json.dump(report.trace_document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(text)
    if report.errors:
        print(f"{report.errors} request error(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
