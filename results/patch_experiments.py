"""Inject measured artifact excerpts into EXPERIMENTS.md placeholders."""

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"
TARGET = ROOT / "EXPERIMENTS.md"


def code_block(text: str) -> str:
    return "```\n" + text.rstrip() + "\n```"


def excerpt(path: str, head: int = 200) -> str:
    lines = (RESULTS / path).read_text().rstrip().split("\n")
    return "\n".join(lines[:head])


def tab12_excerpt() -> str:
    text = (RESULTS / "tab12.txt").read_text()
    # keep rows >= 1% plus headers/footers for readability
    kept = []
    for line in text.split("\n"):
        match = re.search(r"(\d+\.\d)%\s+(\d+\.\d)%", line)
        if match and float(match.group(1)) < 1.0 and float(match.group(2)) < 1.0:
            continue
        kept.append(line)
    return "\n".join(kept)


def fig12_excerpt() -> str:
    return excerpt("fig12.txt")


def fig13_excerpt() -> str:
    return excerpt("fig13.txt")


def tab34_excerpt() -> str:
    return excerpt("tab34.txt")


def ablation_excerpt() -> str:
    return excerpt("ablation.txt")


replacements = {
    "<!-- TAB12 -->": code_block(tab12_excerpt()),
    "<!-- TAB34 -->": code_block(tab34_excerpt()),
    "<!-- FIG12 -->": code_block(fig12_excerpt()),
    "<!-- FIG13 -->": code_block(fig13_excerpt()),
    "<!-- ABLATION -->": code_block(ablation_excerpt()),
}

text = TARGET.read_text()
for marker, content in replacements.items():
    assert marker in text, marker
    text = text.replace(marker, content)
TARGET.write_text(text)
print("EXPERIMENTS.md patched")
