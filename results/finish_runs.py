"""Finish the reproduction within the single-core time budget.

tab12 + tab34 run at the paper's full scale (they are cheap).  fig12
and fig13 run at reduced scale (horizon noted in each artifact header
and in EXPERIMENTS.md); the full-scale commands are recorded so anyone
can regenerate them exactly:

    repro-reproduce -e fig12 --seed 0   # ~45 min on one core
    repro-reproduce -e fig13 --seed 0   # ~10 min on one core
"""

import pathlib

import repro.analysis.experiments as experiments
from repro.analysis.experiments import (
    run_ablation,
    run_fig12,
    run_fig13,
    run_tables_1_2,
    run_tables_3_4,
)
from repro.analysis.figures import to_csv

OUT = pathlib.Path(__file__).resolve().parent
_orig_horizon = experiments._horizon
_orig_rates = experiments._rates

print("tab12 (full scale)...", flush=True)
report = run_tables_1_2(seed=0, quick=False)
(OUT / "tab12.txt").write_text(report.text)

print("tab34 (full scale)...", flush=True)
report = run_tables_3_4(seed=0, quick=False)
(OUT / "tab34.txt").write_text(report.text)

print("fig12 (reduced: horizon 2500, 4 rates)...", flush=True)
experiments._horizon = lambda quick: 2500.0
experiments._rates = lambda quick: [60.0, 120.0, 180.0, 240.0]
report = run_fig12(seed=0, quick=True)  # quick also trims E to {2, 8}
(OUT / "fig12.txt").write_text(
    "(reduced scale: horizon 2500 TU, rates 60/120/180/240, E in {2, 8};\n"
    " full scale: repro-reproduce -e fig12 --seed 0)\n\n" + report.text
)
(OUT / "fig12.csv").write_text(to_csv(report.series, x_label="rate"))

print("fig13 (reduced: horizon 4000, 4 rates)...", flush=True)
experiments._horizon = lambda quick: 4000.0
report = run_fig13(seed=0, quick=True)
(OUT / "fig13.txt").write_text(
    "(reduced scale: horizon 4000 TU, rates 60/120/180/240;\n"
    " full scale: repro-reproduce -e fig13 --seed 0)\n\n" + report.text
)
(OUT / "fig13.csv").write_text(to_csv(report.series, x_label="rate"))

print("ablation (extended variants, horizon 4000)...", flush=True)
report = run_ablation(seed=0, quick=True)
(OUT / "ablation.txt").write_text(
    "(horizon 4000 TU)\n\n" + report.text
)

experiments._horizon = _orig_horizon
experiments._rates = _orig_rates
print("done", flush=True)
