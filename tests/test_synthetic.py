"""Tests for the synthetic service generators."""

import numpy as np
import pytest

from repro.core import BasicPlanner, build_qrg
from repro.core.synthetic import (
    random_availability,
    synthetic_chain,
    synthetic_diamond_dag,
)


class TestSyntheticChain:
    def test_structure(self):
        service, binding, snapshot = synthetic_chain(4, 3)
        assert len(service.components) == 4
        assert service.graph.is_chain()
        assert len(service.ranking.labels) == 3
        assert len(snapshot) == 8  # 4 components x 2 resources

    def test_plannable(self):
        service, binding, snapshot = synthetic_chain(3, 4)
        qrg = build_qrg(service, binding, snapshot)
        plan = BasicPlanner().plan(qrg)
        assert plan is not None
        assert plan.end_to_end_label == service.ranking.labels[0]

    def test_density_drops_edges_but_keeps_diagonal(self):
        rng = np.random.default_rng(0)
        service, binding, snapshot = synthetic_chain(3, 4, rng=rng, density=0.1)
        qrg = build_qrg(service, binding, snapshot)
        assert BasicPlanner().plan(qrg) is not None  # diagonal guarantees a path

    def test_parameter_validation(self):
        with pytest.raises(Exception):
            synthetic_chain(0, 3)
        with pytest.raises(Exception):
            synthetic_chain(3, 3, density=0.0)

    def test_deterministic_given_rng(self):
        a = synthetic_chain(3, 3, rng=np.random.default_rng(5))
        b = synthetic_chain(3, 3, rng=np.random.default_rng(5))
        qrg_a = build_qrg(a[0], a[1], a[2])
        qrg_b = build_qrg(b[0], b[1], b[2])
        assert BasicPlanner().plan(qrg_a).psi == BasicPlanner().plan(qrg_b).psi


class TestSyntheticDiamond:
    def test_structure(self):
        service, binding, snapshot = synthetic_diamond_dag(3, 2)
        assert len(service.components) == 5  # fan + 3 branches + sink
        assert service.graph.is_fan_out("fan")
        assert service.graph.is_fan_in("sink")
        # fan-in inputs: 2^3 concatenations
        assert len(service.sink_component.input_levels) == 8

    def test_validation(self):
        with pytest.raises(Exception):
            synthetic_diamond_dag(1, 2)
        with pytest.raises(Exception):
            synthetic_diamond_dag(2, 0)


class TestRandomAvailability:
    def test_redraws_within_range(self):
        _svc, _bind, snapshot = synthetic_chain(2, 2)
        redrawn = random_availability(snapshot, np.random.default_rng(0), low=5, high=10)
        assert set(redrawn) == set(snapshot)
        for rid in redrawn:
            assert 5 <= redrawn[rid].available <= 10
