"""Smoke tests: every shipped example runs cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 5
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, tmp_path):
    args = [sys.executable, str(EXAMPLES_DIR / name)]
    if name == "grid_metacomputing.py":
        args += ["100", "400"]  # small rate/horizon: keep the smoke test quick
    completed = subprocess.run(
        args,
        capture_output=True,
        text=True,
        timeout=300,
        cwd=str(tmp_path),  # examples write output files to the cwd
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), f"{name} produced no output"
