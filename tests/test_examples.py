"""Smoke tests: every shipped example runs cleanly end to end."""

import os
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def subprocess_env() -> dict:
    """The parent environment with ``src/`` prepended to PYTHONPATH.

    Examples import :mod:`repro`; when the test runner itself found the
    package via ``PYTHONPATH=src`` (the tier-1 invocation), a spawned
    interpreter inherits the relative path with the wrong cwd -- so pass
    the absolute path explicitly.  Also correct when repro is installed
    (``pip install -e .``): the extra entry is harmless.
    """
    env = {**os.environ}
    existing = env.get("PYTHONPATH", "")
    src = str(REPO / "src")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def test_examples_exist():
    assert len(EXAMPLES) >= 5
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, tmp_path):
    args = [sys.executable, str(EXAMPLES_DIR / name)]
    if name == "grid_metacomputing.py":
        args += ["100", "400"]  # small rate/horizon: keep the smoke test quick
    completed = subprocess.run(
        args,
        capture_output=True,
        text=True,
        timeout=300,
        cwd=str(tmp_path),  # examples write output files to the cwd
        env=subprocess_env(),
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), f"{name} produced no output"
