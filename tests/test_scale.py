"""Tests for scaled evaluation environments."""

import pytest

from repro.core import BasicPlanner
from repro.core.errors import ModelError
from repro.des import Environment, RandomStreams
from repro.network.topology import build_scaled_topology
from repro.runtime.session import ServiceSession
from repro.sim.scale import build_scaled_grid, scaled_exclusions, scaled_workload_spec
from repro.sim.workload import WorkloadGenerator


class TestScaledTopology:
    def test_figure9_is_the_4x2_instance(self):
        scaled = build_scaled_topology(4, 2)
        assert len(scaled.hosts) == 4
        assert len(scaled.domains) == 8
        assert len(scaled.links) == 14

    def test_mesh_link_count(self):
        topology = build_scaled_topology(8, 3)
        assert len(topology.links) == 8 * 7 // 2 + 24

    def test_ring_variant(self):
        topology = build_scaled_topology(6, 1, mesh=False)
        # ring: 6 core links + 6 access links
        assert len(topology.links) == 12

    def test_validation(self):
        with pytest.raises(ModelError):
            build_scaled_topology(1, 2)
        with pytest.raises(ModelError):
            build_scaled_topology(4, 0)


class TestScaledGrid:
    def test_services_alternate_families(self):
        grid = build_scaled_grid(Environment(), RandomStreams(0), num_hosts=6)
        assert set(grid.model_store.names()) == {f"S{i}" for i in range(1, 7)}
        # S1 family A (ranking Qp..), S2 family B (ranking Ql..)
        assert grid.services["S1"].ranking.labels[0] == "Qp"
        assert grid.services["S2"].ranking.labels[0] == "Ql"
        assert grid.server_of_service("S5") == "H5"

    def test_session_on_scaled_grid(self):
        env = Environment()
        grid = build_scaled_grid(env, RandomStreams(3), num_hosts=6, domains_per_host=2)
        # domain D12's proxy is H6; request S1 (server H1)
        session = ServiceSession(
            env,
            grid.coordinator,
            "s1",
            "S1",
            grid.binding_for("S1", "D12"),
            BasicPlanner(),
            duration=10.0,
            component_hosts=grid.component_hosts_for("S1", "D12"),
        )
        process = env.process(session.run())
        env.run()
        assert process.value.success
        grid.registry.assert_quiescent()

    def test_exclusion_rule_generalises(self):
        exclusions = scaled_exclusions(6, 2)
        assert exclusions["D1"] == "S1"
        assert exclusions["D2"] == "S1"
        assert exclusions["D11"] == "S6"
        assert exclusions["D12"] == "S6"

    def test_workload_spec_matches_grid(self):
        spec = scaled_workload_spec(6, 2, rate_per_60tu=120, horizon=200)
        assert len(spec.domains) == 12
        assert len(spec.services) == 6

    def test_scaled_workload_respects_exclusions(self):
        spec = scaled_workload_spec(6, 2, rate_per_60tu=600, horizon=120)
        generator = WorkloadGenerator(
            spec, RandomStreams(9), excluded_service=scaled_exclusions(6, 2)
        )
        requests = list(generator.generate())
        assert requests
        exclusions = scaled_exclusions(6, 2)
        for request in requests:
            assert request.service != exclusions[request.domain]

    def test_end_to_end_scaled_simulation(self):
        """A miniature full run on an 8-host grid with all the pieces."""
        env = Environment()
        streams = RandomStreams(5)
        grid = build_scaled_grid(env, streams, num_hosts=8, domains_per_host=2)
        spec = scaled_workload_spec(8, 2, rate_per_60tu=200, horizon=150)
        generator = WorkloadGenerator(
            spec, streams, excluded_service=scaled_exclusions(8, 2)
        )
        planner = BasicPlanner()
        outcomes = []

        def arrivals():
            for request in generator.generate():
                if request.arrival_time > env.now:
                    yield env.timeout(request.arrival_time - env.now)
                session = ServiceSession(
                    env, grid.coordinator, request.session_id, request.service,
                    grid.binding_for(request.service, request.domain),
                    planner, request.duration,
                    demand_scale=request.demand_scale,
                    on_finish=outcomes.append,
                )
                env.process(session.run())

        env.process(arrivals())
        env.run()
        assert len(outcomes) > 100
        success_rate = sum(o.success for o in outcomes) / len(outcomes)
        assert success_rate > 0.5
        grid.registry.assert_quiescent()
