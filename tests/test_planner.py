"""Tests for BasicPlanner and RandomPlanner (paper §4.1, §5)."""

import numpy as np
import pytest

from repro.core import (
    AvailabilitySnapshot,
    BasicPlanner,
    RandomPlanner,
    build_qrg,
    compute_plan,
    enumerate_paths,
    feasible_end_to_end_levels,
    path_bottleneck,
)
from repro.core.errors import PlanningError


class TestBasicPlanner:
    def test_reaches_best_sink_with_minimal_bottleneck(
        self, small_service, small_binding, ample_snapshot
    ):
        plan = compute_plan(small_service, small_binding, ample_snapshot, algorithm="basic")
        assert plan is not None
        assert plan.end_to_end_label == "Qf"
        assert plan.numeric_level == 2
        # Qa-Qb-Qd-Qf: max(10/100, 20/100) = 0.2 (the other Qf path costs 0.4)
        assert plan.psi == pytest.approx(0.2)
        assert plan.signature_string() == "Qa-Qb-Qd-Qf"
        assert plan.bottleneck_resource == "net:L1"

    def test_degrades_to_lower_level_when_top_unreachable(self, small_service, small_binding):
        snapshot = AvailabilitySnapshot.from_amounts({"cpu:H1": 100, "net:L1": 15})
        plan = compute_plan(small_service, small_binding, snapshot, algorithm="basic")
        assert plan.end_to_end_label == "Qg"
        # Qa-Qc-Qe-Qg: max(5/100, 8/15) beats Qa-Qb-Qd-Qg: max(0.1, 12/15)
        assert plan.signature_string() == "Qa-Qc-Qe-Qg"

    def test_returns_none_when_infeasible(self, small_service, small_binding):
        snapshot = AvailabilitySnapshot.from_amounts({"cpu:H1": 1, "net:L1": 1})
        assert compute_plan(small_service, small_binding, snapshot, algorithm="basic") is None

    def test_plan_demand_aggregates_resources(self, small_service, small_binding, ample_snapshot):
        plan = compute_plan(small_service, small_binding, ample_snapshot, algorithm="basic")
        assert dict(plan.demand) == {"cpu:H1": 10.0, "net:L1": 20.0}

    def test_plan_matches_brute_force_over_random_availability(
        self, small_service, small_binding
    ):
        rng = np.random.default_rng(3)
        planner = BasicPlanner()
        for _ in range(60):
            snapshot = AvailabilitySnapshot.from_amounts(
                {
                    "cpu:H1": float(rng.uniform(1, 60)),
                    "net:L1": float(rng.uniform(1, 60)),
                }
            )
            qrg = build_qrg(small_service, small_binding, snapshot)
            plan = planner.plan(qrg)
            levels = feasible_end_to_end_levels(qrg)
            if plan is None:
                assert levels == []
                continue
            assert plan.end_to_end_label == levels[0]
            sink = next(n for n in qrg.sink_nodes() if n.label == plan.end_to_end_label)
            paths = enumerate_paths(qrg.source_node, sink, qrg.successors)
            best = min(path_bottleneck(p) for p in paths)
            assert plan.psi == pytest.approx(best)

    def test_assignment_lookup(self, small_service, small_binding, ample_snapshot):
        plan = compute_plan(small_service, small_binding, ample_snapshot)
        assert plan.assignment_for("c1").qout_label == "Qb"
        with pytest.raises(Exception):
            plan.assignment_for("zz")

    def test_describe_mentions_components(self, small_service, small_binding, ample_snapshot):
        text = compute_plan(small_service, small_binding, ample_snapshot).describe()
        assert "c1" in text and "c2" in text and "Psi" in text


class TestRandomPlanner:
    def test_always_best_sink_but_varied_paths(
        self, small_service, small_binding, ample_snapshot
    ):
        qrg = build_qrg(small_service, small_binding, ample_snapshot)
        planner = RandomPlanner(rng=np.random.default_rng(0))
        signatures = set()
        for _ in range(60):
            plan = planner.plan(qrg)
            assert plan.end_to_end_label == "Qf"
            signatures.add(plan.signature_string())
        assert signatures == {"Qa-Qb-Qd-Qf", "Qa-Qc-Qe-Qf"}

    def test_none_when_infeasible(self, small_service, small_binding):
        snapshot = AvailabilitySnapshot.from_amounts({"cpu:H1": 1, "net:L1": 1})
        qrg = build_qrg(small_service, small_binding, snapshot)
        assert RandomPlanner(rng=np.random.default_rng(0)).plan(qrg) is None

    def test_reproducible_given_rng(self, small_service, small_binding, ample_snapshot):
        qrg = build_qrg(small_service, small_binding, ample_snapshot)
        a = [RandomPlanner(rng=np.random.default_rng(5)).plan(qrg).signature_string() for _ in range(5)]
        b = [RandomPlanner(rng=np.random.default_rng(5)).plan(qrg).signature_string() for _ in range(5)]
        assert a == b


class TestComputePlanFacade:
    def test_unknown_algorithm(self, small_service, small_binding, ample_snapshot):
        with pytest.raises(PlanningError):
            compute_plan(small_service, small_binding, ample_snapshot, algorithm="mystery")

    def test_dag_algorithms_accept_chains(self, small_service, small_binding, ample_snapshot):
        basic = compute_plan(small_service, small_binding, ample_snapshot, algorithm="basic")
        dag = compute_plan(small_service, small_binding, ample_snapshot, algorithm="dag")
        exhaustive = compute_plan(
            small_service, small_binding, ample_snapshot, algorithm="dag-exhaustive"
        )
        assert basic.psi == pytest.approx(dag.psi) == pytest.approx(exhaustive.psi)
        assert basic.end_to_end_label == dag.end_to_end_label == exhaustive.end_to_end_label


class TestChainGuard:
    def test_chain_algorithms_reject_dag_services(self):
        import numpy as np

        from repro.core import compute_plan
        from repro.core.errors import PlanningError
        from repro.core.synthetic import synthetic_diamond_dag

        service, binding, snapshot = synthetic_diamond_dag(2, 2, rng=np.random.default_rng(0))
        for algorithm in ("basic", "tradeoff", "random"):
            with pytest.raises(PlanningError, match="chain"):
                compute_plan(service, binding, snapshot, algorithm=algorithm)
        # the DAG planners accept it
        assert compute_plan(service, binding, snapshot, algorithm="dag") is not None
