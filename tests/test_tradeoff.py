"""Tests for the QoS / success-rate tradeoff policy (paper §4.3.1)."""

import pytest

from repro.core import (
    AvailabilitySnapshot,
    ResourceObservation,
    TradeoffPlanner,
    build_qrg,
    sink_report,
)


def snapshot_with_alpha(cpu_alpha: float, net_alpha: float, cpu=100.0, net=100.0):
    return AvailabilitySnapshot(
        {
            "cpu:H1": ResourceObservation(available=cpu, alpha=cpu_alpha),
            "net:L1": ResourceObservation(available=net, alpha=net_alpha),
        }
    )


class TestTradeoffPolicy:
    def test_keeps_best_sink_when_trend_up(self, small_service, small_binding):
        qrg = build_qrg(small_service, small_binding, snapshot_with_alpha(1.0, 1.1))
        plan = TradeoffPlanner().plan(qrg)
        assert plan.end_to_end_label == "Qf"

    def test_downgrades_when_bottleneck_trending_down(self, small_service, small_binding):
        # best sink Qf via Qa-Qb-Qd-Qf: psi0 = 0.2 (net bottleneck).
        # alpha(net)=0.5 => budget 0.1; Qg reachable at psi=0.1 via
        # Qa-Qb/Qc...: Qa-Qc-Qe-Qg: max(0.05, 0.08)=0.08 <= 0.1 -> Qg.
        qrg = build_qrg(small_service, small_binding, snapshot_with_alpha(1.0, 0.5))
        plan = TradeoffPlanner().plan(qrg)
        assert plan.end_to_end_label == "Qg"
        assert plan.psi <= 0.5 * 0.2 + 1e-12

    def test_mild_downturn_keeps_level_if_within_budget(self, small_service, small_binding):
        # alpha = 0.99 => budget 0.198; no sink fits except via fallback:
        # Qg's best psi is 0.08 <= 0.198, so Qg satisfies the inequality.
        qrg = build_qrg(small_service, small_binding, snapshot_with_alpha(1.0, 0.99))
        plan = TradeoffPlanner().plan(qrg)
        assert plan.end_to_end_label == "Qg"

    def test_fallback_to_most_conservative_when_none_fit(self, small_service, small_binding):
        # Make ALL paths expensive: tiny availability so psi values are large
        # and close; alpha small so no sink passes the budget test.
        snapshot = AvailabilitySnapshot(
            {
                "cpu:H1": ResourceObservation(available=12.0, alpha=1.0),
                "net:L1": ResourceObservation(available=21.0, alpha=0.05),
            }
        )
        qrg = build_qrg(small_service, small_binding, snapshot)
        plan = TradeoffPlanner().plan(qrg)
        assert plan is not None
        # the most conservative reachable sink = the one with min psi
        rows = sink_report(qrg)
        min_psi = min(psi for _label, psi, _alpha in rows)
        assert plan.psi == pytest.approx(min_psi)

    def test_none_when_infeasible(self, small_service, small_binding):
        snapshot = AvailabilitySnapshot.from_amounts({"cpu:H1": 1, "net:L1": 1})
        qrg = build_qrg(small_service, small_binding, snapshot)
        assert TradeoffPlanner().plan(qrg) is None

    def test_never_exceeds_basic_choice(self, small_service, small_binding):
        from repro.core import BasicPlanner

        for net_alpha in (0.3, 0.7, 1.0, 1.4):
            qrg = build_qrg(small_service, small_binding, snapshot_with_alpha(1.0, net_alpha))
            basic = BasicPlanner().plan(qrg)
            tradeoff = TradeoffPlanner().plan(qrg)
            assert tradeoff.end_to_end_rank >= basic.end_to_end_rank


class TestSinkReport:
    def test_rows_sorted_best_first(self, small_service, small_binding, ample_snapshot):
        qrg = build_qrg(small_service, small_binding, ample_snapshot)
        rows = sink_report(qrg)
        assert [label for label, _psi, _alpha in rows] == ["Qf", "Qg"]
        assert rows[0][1] == pytest.approx(0.2)
        assert rows[1][1] == pytest.approx(0.08)

    def test_alpha_attached_to_bottleneck(self, small_service, small_binding):
        qrg = build_qrg(small_service, small_binding, snapshot_with_alpha(0.4, 0.9))
        rows = sink_report(qrg)
        # bottleneck of every path here is the net resource (weights larger)
        assert all(alpha == 0.9 for _label, _psi, alpha in rows)
