"""The observability layer: tracer, metrics, exporters, sim integration."""

import csv
import json

import pytest

from repro.obs import (
    DEFAULT_PSI_BUCKETS,
    Histogram,
    MetricsRegistry,
    ObservabilityConfig,
    ObservationSession,
    Tracer,
    active_registry,
    active_tracer,
    metering,
    observability_to_dict,
    summary_report,
    tracing,
)
from repro.obs import trace as trace_mod
from repro.obs.export import TRACE_SCHEMA_VERSION
from repro.obs.metrics import format_labels


class TestTracer:
    def test_disabled_by_default(self):
        assert active_tracer() is None
        # The module-level span helper must be a usable no-op.
        with trace_mod.span("anything", key="value") as span:
            span.set(more="attrs")
        trace_mod.event("nothing")
        assert active_tracer() is None

    def test_spans_nest_with_parent_links(self):
        tracer = Tracer()
        with tracing(tracer):
            with trace_mod.span("outer", a=1):
                with trace_mod.span("inner"):
                    pass
                with trace_mod.span("inner"):
                    pass
        assert active_tracer() is None  # restored
        assert [r.name for r in tracer.records] == ["inner", "inner", "outer"]
        outer = tracer.records[-1]
        assert outer.depth == 0 and outer.parent_index is None
        for inner in tracer.records[:2]:
            assert inner.depth == 1
            assert inner.parent_index == outer.index
            # children complete within the parent's interval
            assert inner.start >= outer.start
            assert inner.start + inner.duration <= outer.start + outer.duration + 1e-9
        assert tracer.count("inner") == 2
        assert tracer.total_time("inner") <= outer.duration + 1e-9
        assert tracer.names() == ["inner", "outer"]

    def test_span_attributes_and_set(self):
        tracer = Tracer()
        with tracing(tracer):
            with trace_mod.span("work", phase=1) as span:
                span.set(result="ok", phase=2)
        (record,) = tracer.records
        assert record.attributes == {"phase": 2, "result": "ok"}
        assert record.to_dict()["attributes"] == {"phase": 2, "result": "ok"}

    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer()
        with tracing(tracer):
            with pytest.raises(ValueError):
                with trace_mod.span("doomed"):
                    raise ValueError("boom")
        (record,) = tracer.records
        assert record.attributes["error"] == "ValueError: boom"

    def test_events_are_zero_duration(self):
        tracer = Tracer()
        with tracing(tracer):
            with trace_mod.span("outer"):
                trace_mod.event("tick", n=3)
        event = tracer.records[0]
        assert event.name == "tick" and event.duration == 0.0
        assert event.attributes == {"n": 3}
        assert event.parent_index == tracer.records[1].index

    def test_nested_tracing_restores_previous(self):
        outer_tracer, inner_tracer = Tracer(), Tracer()
        with tracing(outer_tracer):
            with tracing(inner_tracer):
                assert active_tracer() is inner_tracer
            assert active_tracer() is outer_tracer


class TestMetrics:
    def test_disabled_by_default(self):
        assert active_registry() is None

    def test_counter_identity_and_totals(self):
        registry = MetricsRegistry()
        registry.counter("broker.grants", resource="cpu:H1").inc()
        registry.counter("broker.grants", resource="cpu:H1").inc(2)
        registry.counter("broker.grants", resource="cpu:H2").inc()
        assert registry.counter_value("broker.grants", resource="cpu:H1") == 3
        assert registry.counter_value("broker.grants", resource="never") == 0
        assert registry.counter_total("broker.grants") == 4
        with pytest.raises(ValueError):
            registry.counter("broker.grants", resource="cpu:H1").inc(-1)

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("c", x="1", y="2")
        b = registry.counter("c", y="2", x="1")
        assert a is b

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("broker.utilization", resource="cpu:H1")
        gauge.set(0.5)
        gauge.add(0.25)
        assert gauge.value == pytest.approx(0.75)

    def test_histogram_bucketing(self):
        histogram = Histogram((0.1, 1.0))
        for value in (0.05, 0.1, 0.5, 2.0):
            histogram.observe(value)
        # boundaries are inclusive upper bounds; beyond-last goes to overflow
        assert histogram.bucket_counts == [2, 1, 1]
        assert histogram.count == 4
        assert histogram.min == 0.05 and histogram.max == 2.0
        assert histogram.mean == pytest.approx((0.05 + 0.1 + 0.5 + 2.0) / 4)
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((1.0, 0.1))

    def test_histogram_buckets_fixed_at_creation(self):
        registry = MetricsRegistry()
        first = registry.histogram("session.psi", buckets=DEFAULT_PSI_BUCKETS)
        again = registry.histogram("session.psi")
        assert again is first
        assert again.boundaries == DEFAULT_PSI_BUCKETS

    def test_rows_expand_histograms(self):
        registry = MetricsRegistry()
        registry.counter("broker.grants", resource="cpu:H1").inc()
        registry.histogram("latency", buckets=(0.1, 1.0)).observe(0.05)
        rows = registry.rows()
        kinds = {row[0] for row in rows}
        assert kinds == {"counter", "histogram"}
        histogram_fields = [row[3] for row in rows if row[0] == "histogram"]
        assert histogram_fields == ["count", "sum", "le=0.1", "le=1", "le=inf"]

    def test_format_labels(self):
        assert format_labels(()) == ""
        assert format_labels((("a", "1"), ("b", "2"))) == "{a=1,b=2}"

    def test_metering_restores_previous(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with metering(outer):
            with metering(inner):
                assert active_registry() is inner
            assert active_registry() is outer
        assert active_registry() is None

    def test_counter_rate(self):
        counter = MetricsRegistry().counter("session.arrivals")
        counter.inc(30)
        assert counter.rate(60.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            counter.rate(0.0)
        with pytest.raises(ValueError):
            counter.rate(-1.0)

    def test_histogram_percentile_interpolates(self):
        histogram = Histogram((10.0, 20.0, 30.0))
        for value in (2.0, 12.0, 14.0, 22.0, 28.0):
            histogram.observe(value)
        # q=0.5 -> target 2.5 obs; bucket (10, 20] holds obs 2..3, so the
        # estimate interpolates inside it: 10 + (2.5-1)/2 * 10 = 17.5
        assert histogram.percentile(0.5) == pytest.approx(17.5)
        # extremes clamp to the tracked exact min/max
        assert histogram.percentile(0.0) == 2.0
        assert histogram.percentile(1.0) == 28.0
        with pytest.raises(ValueError):
            histogram.percentile(1.5)

    def test_histogram_percentile_edge_cases(self):
        empty = Histogram((1.0,))
        assert empty.percentile(0.5) == 0.0
        overflow = Histogram((1.0,))
        overflow.observe(5.0)
        overflow.observe(7.0)
        # everything beyond the last bound reports the recorded maximum
        assert overflow.percentile(0.99) == 7.0
        payload = overflow.to_dict()
        assert payload["p50"] == 7.0 and payload["p95"] == 7.0 and payload["p99"] == 7.0

    def test_snapshot_and_rows_deterministically_ordered(self):
        """Insertion order must never leak into exports: two registries
        fed the same instruments in different orders export identically."""

        def fill(registry, order):
            for name, labels in order:
                registry.counter(name, **labels).inc()
                registry.gauge("g." + name, **labels).set(1.0)
                registry.histogram("h." + name, buckets=(1.0,), **labels).observe(0.5)

        instruments = [
            ("broker.grants", {"resource": "cpu:H2"}),
            ("broker.grants", {"resource": "cpu:H1"}),
            ("alpha.first", {}),
            ("broker.grants", {"host": "H1", "resource": "cpu:H1"}),
        ]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        fill(forward, instruments)
        fill(backward, list(reversed(instruments)))
        assert forward.snapshot() == backward.snapshot()
        assert forward.rows() == backward.rows()
        counter_keys = list(forward.snapshot()["counters"])
        assert counter_keys == sorted(counter_keys)


class TestExport:
    def build(self):
        tracer = Tracer()
        with tracer.span("establish"):
            with tracer.span("dijkstra"):
                pass
        registry = MetricsRegistry()
        registry.counter("broker.grants", resource="cpu:H1").inc(5)
        registry.counter("broker.rejections", resource="cpu:H1").inc()
        registry.counter("session.admitted", service="S1").inc(4)
        return tracer, registry

    def test_document_shape(self):
        tracer, registry = self.build()
        document = observability_to_dict(tracer, registry, meta={"seed": 0})
        assert document["schema_version"] == TRACE_SCHEMA_VERSION
        assert document["meta"] == {"seed": 0}
        assert [s["name"] for s in document["spans"]] == ["dijkstra", "establish"]
        assert document["span_totals"]["dijkstra"]["count"] == 1
        counters = document["metrics"]["counters"]
        assert counters["broker.grants{resource=cpu:H1}"]["value"] == 5
        # must round-trip through json
        json.dumps(document)

    def test_write_trace_json_and_metrics_csv(self, tmp_path):
        tracer, registry = self.build()
        session = ObservationSession()
        session.tracer, session.registry = tracer, registry
        trace_file = session.write_trace_json(tmp_path / "out" / "trace.json")
        document = json.loads(trace_file.read_text())
        assert document["schema_version"] == TRACE_SCHEMA_VERSION
        csv_file = session.write_metrics_csv(tmp_path / "metrics.csv")
        with csv_file.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["kind", "name", "labels", "field", "value"]
        assert ["counter", "broker.grants", "{resource=cpu:H1}", "value", "5.0"] in rows

    def test_summary_report_sections(self):
        tracer, registry = self.build()
        report = summary_report(tracer, registry)
        assert "per-phase timings:" in report
        assert "dijkstra" in report
        assert "per-broker reservations:" in report
        assert "cpu:H1" in report
        assert "session outcomes:" in report
        assert "session.admitted" in report

    def test_summary_report_distributions_with_percentiles(self):
        tracer, registry = self.build()
        histogram = registry.histogram("coordinator.establish_seconds")
        for value in (0.0002, 0.0004, 0.002, 0.04):
            histogram.observe(value)
        report = summary_report(tracer, registry)
        assert "distributions:" in report
        assert "p50" in report and "p95" in report and "p99" in report
        assert "coordinator.establish_seconds" in report
        # empty histograms don't force the section in
        assert "distributions:" not in summary_report(*self.build())

    def test_csv_rows_parse_back_to_identical_values(self, tmp_path):
        tracer, registry = self.build()
        registry.histogram("latency", buckets=(0.1, 1.0)).observe(0.05)
        session = ObservationSession()
        session.tracer, session.registry = tracer, registry
        csv_file = session.write_metrics_csv(tmp_path / "metrics.csv")
        with csv_file.open() as handle:
            parsed = [
                (kind, name, labels, field, float(value))
                for kind, name, labels, field, value in list(csv.reader(handle))[1:]
            ]
        assert parsed == [
            (kind, name, labels, field, float(value))
            for kind, name, labels, field, value in registry.rows()
        ]


class TestObservationSession:
    def test_installs_and_restores(self):
        assert active_tracer() is None and active_registry() is None
        session = ObservationSession()
        with session:
            assert active_tracer() is session.tracer
            assert active_registry() is session.registry
        assert active_tracer() is None and active_registry() is None

    def test_partial_collection(self):
        config = ObservabilityConfig(trace=False, metrics=True)
        assert config.enabled
        session = ObservationSession(config)
        assert session.tracer is None and session.registry is not None
        with session:
            assert active_tracer() is None
            assert active_registry() is session.registry
        with pytest.raises(ValueError):
            ObservationSession(ObservabilityConfig(metrics=False)).write_metrics_csv("x")

    def test_disabled_config(self):
        config = ObservabilityConfig(trace=False, metrics=False, events=False)
        assert not config.enabled
        # any single collector keeps the session worth entering
        assert ObservabilityConfig(trace=False, metrics=False).enabled

    def test_export_writes_configured_paths(self, tmp_path):
        config = ObservabilityConfig(
            trace_path=str(tmp_path / "trace.json"),
            metrics_path=str(tmp_path / "metrics.csv"),
            summary_path=str(tmp_path / "summary.txt"),
        )
        session = ObservationSession(config)
        with session:
            with session.tracer.span("qrg_build"):
                pass
            session.registry.counter("broker.grants", resource="r").inc()
        session.export(meta={"algorithm": "basic"})
        assert json.loads((tmp_path / "trace.json").read_text())["meta"] == {
            "algorithm": "basic"
        }
        assert (tmp_path / "metrics.csv").read_text().startswith("kind,")
        assert "qrg_build" in (tmp_path / "summary.txt").read_text()


class TestInstrumentedPipeline:
    """The instrumented call sites emit the expected spans/counters."""

    def test_compute_plan_emits_phase_spans(self, small_service, small_binding, ample_snapshot):
        from repro.core import BasicPlanner
        from repro.core.qrg import build_qrg

        tracer = Tracer()
        with tracing(tracer):
            qrg = build_qrg(small_service, small_binding, ample_snapshot)
            plan = BasicPlanner().plan(qrg)
        assert plan is not None
        names = tracer.names()
        assert "qrg_build" in names
        assert "dijkstra" in names
        assert "plan" in names
        qrg_record = next(r for r in tracer.records if r.name == "qrg_build")
        assert qrg_record.attributes["nodes"] > 0
        dijkstra_record = next(r for r in tracer.records if r.name == "dijkstra")
        assert dijkstra_record.attributes["settled"] > 0

    def test_broker_counters(self):
        from repro.brokers import LocalResourceBroker
        from repro.core.errors import AdmissionError

        registry = MetricsRegistry()
        with metering(registry):
            broker = LocalResourceBroker("H1", "cpu", 100.0)
            reservation = broker.reserve(40.0, "s1")
            with pytest.raises(AdmissionError):
                broker.reserve(100.0, "s2")
            broker.release(reservation)
        labels = {"resource": "cpu:H1", "host": "H1", "kind": "cpu"}
        assert registry.counter_value("broker.grants", **labels) == 1
        assert registry.counter_value("broker.rejections", **labels) == 1
        assert registry.counter_value("broker.releases", **labels) == 1
        assert registry.gauge("broker.utilization", **labels).value == 0.0


class TestSimulationIntegration:
    """Acceptance: a traced sim run emits the per-phase timings and the
    per-broker grant/reject counters in the exported JSON document."""

    @pytest.fixture(scope="class")
    def traced_run(self, tmp_path_factory):
        from repro.sim import SimulationConfig, run_simulation
        from repro.sim.workload import WorkloadSpec

        out = tmp_path_factory.mktemp("obs")
        config = SimulationConfig(
            algorithm="tradeoff",
            seed=7,
            workload=WorkloadSpec(rate_per_60tu=120.0, horizon=300.0),
            observability=ObservabilityConfig(
                trace_path=str(out / "trace.json"),
                metrics_path=str(out / "metrics.csv"),
                summary_path=str(out / "summary.txt"),
            ),
        )
        result = run_simulation(config)
        return result, out

    def test_observation_attached_and_uninstalled(self, traced_run):
        result, _out = traced_run
        assert result.observation is not None
        assert active_tracer() is None and active_registry() is None

    def test_trace_json_has_phase_timings(self, traced_run):
        result, out = traced_run
        document = json.loads((out / "trace.json").read_text())
        assert document["schema_version"] == TRACE_SCHEMA_VERSION
        assert document["meta"]["algorithm"] == "tradeoff"
        totals = document["span_totals"]
        for phase in ("qrg_build", "dijkstra", "establish", "plan",
                      "phase1_availability", "phase2_plan", "phase3_dispatch"):
            assert phase in totals, f"missing span totals for {phase}"
            assert totals[phase]["count"] > 0
            assert totals[phase]["total_seconds"] > 0.0
        # every establish drove exactly one QRG build + plan
        assert totals["establish"]["count"] == totals["qrg_build"]["count"]
        assert totals["establish"]["count"] == result.metrics.attempts

    def test_trace_json_has_broker_counters(self, traced_run):
        result, out = traced_run
        document = json.loads((out / "trace.json").read_text())
        counters = document["metrics"]["counters"]
        grants = [k for k in counters if k.startswith("broker.grants{")]
        assert grants, "no broker grant counters in the trace document"
        registry = result.observation.registry
        assert registry.counter_total("broker.grants") == sum(
            counters[k]["value"] for k in grants
        )
        # grants and releases balance: the run ends quiescent
        assert registry.counter_total("broker.grants") == registry.counter_total(
            "broker.releases"
        )
        # session outcome counters agree with the run's own metrics
        assert registry.counter_total("session.admitted") == result.metrics.successes
        assert (
            registry.counter_total("session.admitted")
            + registry.counter_total("session.rejected")
            == result.metrics.attempts
        )

    def test_csv_and_summary_written(self, traced_run):
        _result, out = traced_run
        with (out / "metrics.csv").open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["kind", "name", "labels", "field", "value"]
        names = {row[1] for row in rows[1:]}
        assert "broker.grants" in names
        assert "coordinator.establish_seconds" in names
        summary = (out / "summary.txt").read_text()
        assert "per-phase timings:" in summary
        assert "per-broker reservations:" in summary
