"""The sharded cluster: shard map, 2PC router, reconciliation, identity.

Covers the PR's acceptance properties: the shard map partitions every
resource exactly once and deterministically, a single-shard cluster
router returns responses byte-identical to the bare daemon (and hence to
the in-process coordinator), cross-shard establishments either commit on
every involved shard or leave zero net capacity behind under admission
failure / drain / crash, stranded leases are reaped by TTL, and the
offline reconciler verifies global conservation from merged per-shard
event logs -- catching each violation class when fed corrupted books.
"""

import asyncio
import json

import pytest

from repro.core.errors import ModelError
from repro.faults.invariants import (
    capacity_conservation,
    reconcile_shard_events,
)
from repro.obs.events import EventLog
from repro.service import (
    DaemonConfig,
    ReservationDaemon,
    ReservationService,
    ServiceClient,
    ServiceClientError,
)
from repro.cluster import (
    ClusterConfig,
    ClusterCoordinator,
    ClusterDaemon,
    LocalShardClient,
    ShardMap,
)
from repro.sim.environment import GridEnvironment
from repro.des.engine import Environment
from repro.des.rng import RandomStreams

from tests.test_service_daemon import VALID_PAIRS, _seeded_operations


def _topology(seed: int = 0):
    return GridEnvironment(Environment(), RandomStreams(seed)).topology


def make_local_shards(count: int, seed: int = 7, **overrides):
    """``count`` in-process shard services with per-shard event logs."""
    shards = []
    for index in range(count):
        config = DaemonConfig(
            seed=seed, shard_index=index, shard_count=count, **overrides
        )
        shards.append(
            LocalShardClient(
                index, ReservationService(config), log=EventLog()
            )
        )
    return shards


def assert_cluster_clean(shards, *, session_ids=()):
    """Every shard conserves capacity and holds nothing for the sessions."""
    for shard in shards:
        report = capacity_conservation(
            shard.service.grid.registry, shard.service.grid.proxies
        )
        assert report.ok, f"{shard.label}: {report.describe()}"
        for session_id in session_ids:
            for host, proxy in shard.service.grid.proxies.items():
                held = proxy.held_for(session_id)
                assert not held, (shard.label, host, session_id, held)


# ---------------------------------------------------------------------------
# the shard map


def test_shard_map_partitions_every_resource_exactly_once():
    topology = _topology()
    grid = GridEnvironment(Environment(), RandomStreams(0))
    for count in (1, 2, 3, 4):
        shard_map = ShardMap.from_topology(topology, count)
        owners = {}
        for rid in grid.registry.resource_ids():
            shard = shard_map.shard_of(rid)
            assert 0 <= shard < count
            owners[rid] = shard
        for index in range(count):
            owned = shard_map.owned_resource_ids(index, grid.registry.resource_ids())
            assert set(owned) == {r for r, s in owners.items() if s == index}
        assert set(owners.values()) == set(range(count))


def test_shard_map_is_deterministic_and_groups_domains_with_hosts():
    topology = _topology()
    a = ShardMap.from_topology(topology, 3)
    b = ShardMap.from_topology(topology, 3)
    assert a.assignments == b.assignments
    # A domain's access path lives with its proxy host's shard, so
    # cpu:H and the net: paths that end at H's domains can only split
    # across shards when the *other* endpoint owns the path.
    for domain, host in a.domain_proxy_hosts.items():
        assert a.shard_of_node(domain) == a.shard_of_node(host)


def test_shard_map_rejects_bad_counts_and_unknown_resources():
    topology = _topology()
    with pytest.raises(ModelError):
        ShardMap.from_topology(topology, 0)
    with pytest.raises(ModelError):
        ShardMap.from_topology(topology, 99)
    shard_map = ShardMap.from_topology(topology, 2)
    with pytest.raises(ModelError):
        shard_map.shard_of("link:L999")


# ---------------------------------------------------------------------------
# single-shard byte-identity


def test_single_shard_router_byte_identical_to_bare_service():
    operations = _seeded_operations()

    async def through_router():
        shard = LocalShardClient(
            0, ReservationService(DaemonConfig(seed=23)), log=EventLog()
        )
        coordinator = ClusterCoordinator([shard], seed=23)
        bodies = []
        for op, payload in operations:
            if op == "establish":
                status, body = await coordinator.establish(payload)
            else:
                status, body = await coordinator.teardown(payload)
            assert status == 200
            bodies.append(body)
        return bodies

    router_bodies = asyncio.run(through_router())

    service = ReservationService(DaemonConfig(seed=23))
    local_bodies = []
    for op, payload in operations:
        document = getattr(service, op)(payload)
        local_bodies.append(json.dumps(document, sort_keys=True).encode("utf-8"))

    assert router_bodies == local_bodies


def test_single_shard_router_over_http_byte_identical():
    operations = _seeded_operations(count=10)

    async def scenario():
        daemon = ReservationDaemon(DaemonConfig(port=0, seed=23))
        await daemon.start()
        router = ClusterDaemon(
            ClusterConfig(shards=(("127.0.0.1", daemon.port),), port=0, seed=23)
        )
        await router.start()
        try:
            client = ServiceClient("127.0.0.1", router.port)
            bodies = []
            for op, payload in operations:
                response = await client.request("POST", f"/v1/{op}", payload)
                assert response.status == 200
                bodies.append(response.body)
            await client.aclose()
            return bodies
        finally:
            await router.shutdown()
            await daemon.shutdown()

    api_bodies = asyncio.run(scenario())

    service = ReservationService(DaemonConfig(seed=23))
    local_bodies = []
    for op, payload in operations:
        document = getattr(service, op)(payload)
        local_bodies.append(json.dumps(document, sort_keys=True).encode("utf-8"))

    assert api_bodies == local_bodies


# ---------------------------------------------------------------------------
# cross-shard two-phase commit


def test_cross_shard_establish_commits_on_every_involved_shard():
    async def scenario():
        shards = make_local_shards(3)
        coordinator = ClusterCoordinator(shards, seed=7)
        outcomes = []
        for index, (service_name, domain) in enumerate(VALID_PAIRS[:4]):
            status, body = await coordinator.establish(
                {
                    "service": service_name,
                    "domain": domain,
                    "session_id": f"s-{index}",
                }
            )
            assert status == 200
            outcomes.append(json.loads(body))
        admitted = [o for o in outcomes if o["success"]]
        assert admitted, outcomes
        for outcome in admitted:
            assert outcome["level"] in {1, 2, 3}
            assert outcome["psi"] is not None
        # Leases all settled: nothing pending on any shard.
        for shard in shards:
            assert not shard.service._shard_leases
        for shard in shards:
            report = capacity_conservation(
                shard.service.grid.registry, shard.service.grid.proxies
            )
            assert report.ok, report.describe()
        # Teardown returns the grid to empty on every shard.
        for outcome in admitted:
            status, body = await coordinator.teardown(
                {"session_id": outcome["session_id"]}
            )
            assert status == 200
            assert json.loads(body)["released"] > 0
        assert_cluster_clean(
            shards, session_ids=[o["session_id"] for o in outcomes]
        )
        # The merged logs reconcile with zero violations.
        report = reconcile_shard_events(
            {shard.label: list(shard.log) for shard in shards}
        )
        assert report.ok, report.describe()
        assert report.cross_shard_sessions >= 1

    asyncio.run(scenario())


def test_rejected_plan_reserves_nothing_anywhere():
    async def scenario():
        shards = make_local_shards(3)
        coordinator = ClusterCoordinator(shards, seed=7)
        status, body = await coordinator.establish(
            {
                "service": "S1",
                "domain": "D3",
                "session_id": "too-big",
                "demand_scale": 1e9,
            }
        )
        assert status == 200
        outcome = json.loads(body)
        assert outcome["success"] is False
        assert outcome["reason"] == "no_feasible_plan"
        for shard in shards:
            assert shard.service.lease_counters["reserved"] == 0
        assert_cluster_clean(shards, session_ids=["too-big"])

    asyncio.run(scenario())


def test_draining_shard_aborts_the_round_cleanly():
    async def scenario():
        shards = make_local_shards(3)
        coordinator = ClusterCoordinator(shards, seed=7)
        # Find a pair that spans at least two shards, then drain one of
        # the involved shards and re-try: the round must abort with
        # nothing held anywhere.
        for service_name, domain in VALID_PAIRS:
            binding = coordinator.grid.binding_for(service_name, domain)
            involved = sorted(
                {
                    coordinator.shard_map.shard_of(rid)
                    for rid in binding.resource_ids()
                }
            )
            if len(involved) >= 2:
                break
        else:
            pytest.skip("no cross-shard pair in this topology")
        shards[involved[-1]].draining = True
        status, body = await coordinator.establish(
            {"service": service_name, "domain": domain, "session_id": "drained"}
        )
        assert status == 200
        outcome = json.loads(body)
        assert outcome["success"] is False
        assert outcome["reason"] == "shard_draining"
        assert_cluster_clean(shards, session_ids=["drained"])
        report = reconcile_shard_events(
            {shard.label: list(shard.log) for shard in shards}
        )
        assert report.ok, report.describe()

    asyncio.run(scenario())


def test_shard_crash_mid_reserve_strands_only_a_ttl_lease():
    async def scenario():
        shards = make_local_shards(3)
        coordinator = ClusterCoordinator(shards, seed=7)
        for service_name, domain in VALID_PAIRS:
            binding = coordinator.grid.binding_for(service_name, domain)
            involved = sorted(
                {
                    coordinator.shard_map.shard_of(rid)
                    for rid in binding.resource_ids()
                }
            )
            if len(involved) >= 2:
                break
        else:
            pytest.skip("no cross-shard pair in this topology")
        # The *first* involved shard grants, then dies before its ack
        # reaches the router (the lost-ack case).
        victim = shards[involved[0]]
        victim.crash_on_next_reserve = True
        status, body = await coordinator.establish(
            {"service": service_name, "domain": domain, "session_id": "lost"}
        )
        outcome = json.loads(body)
        assert outcome["success"] is False
        assert outcome["reason"] == "shard_unreachable"
        # The dead shard holds the lease the router could not abort --
        # no capacity is lost for longer than the TTL.
        assert len(victim.service._shard_leases) == 1
        reaped = await victim.reap(now=float("inf"))
        assert reaped == 1
        assert_cluster_clean(shards, session_ids=["lost"])
        report = reconcile_shard_events(
            {shard.label: list(shard.log) for shard in shards}
        )
        assert report.ok, report.describe()
        # The other involved shards never committed anything.
        for shard in shards:
            assert shard.service.lease_counters["committed"] == 0

    asyncio.run(scenario())


def test_unknown_session_teardown_is_404_multi_shard():
    async def scenario():
        shards = make_local_shards(2)
        coordinator = ClusterCoordinator(shards, seed=7)
        status, body = await coordinator.teardown({"session_id": "ghost"})
        assert status == 404

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# the 2PC wire endpoints on a daemon


def test_reserve_commit_abort_over_http():
    async def scenario():
        daemon = ReservationDaemon(DaemonConfig(port=0, seed=3, lease_ttl=30.0))
        await daemon.start()
        try:
            client = ServiceClient("127.0.0.1", daemon.port)
            availability = await client.availability()
            assert availability["resources"]
            rid, fields = next(iter(sorted(availability["resources"].items())))
            amount = min(1.0, fields["available"] / 2)
            # reserve -> commit
            outcome = await client.reserve("lease-a", {rid: amount})
            assert outcome["reserved"] is True
            committed = await client.commit(
                outcome["lease_id"], session={"service": "S1", "domain": "D3"}
            )
            assert committed["committed"] is True
            state = await client.query()
            assert state["shard"]["lease_counters"]["committed"] == 1
            released = await client.teardown("lease-a")
            assert released["released"] > 0
            # reserve -> abort
            outcome = await client.reserve("lease-b", {rid: amount})
            aborted = await client.abort(outcome["lease_id"])
            assert aborted["aborted"] is True and aborted["released"] > 0
            # abort is idempotent; commit of an unknown lease is 404
            again = await client.abort(outcome["lease_id"])
            assert again["aborted"] is False
            with pytest.raises(ServiceClientError) as unknown:
                await client.commit("no-such-lease")
            assert unknown.value.status == 404
            # unknown resource is a 400
            with pytest.raises(ServiceClientError) as bad:
                await client.reserve("lease-c", {"cpu:H999": 1.0})
            assert bad.value.status == 400
            await client.aclose()
            report = capacity_conservation(
                daemon.service.grid.registry, daemon.service.grid.proxies
            )
            assert report.ok, report.describe()
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())


def test_sharded_daemon_refuses_unowned_resources():
    async def scenario():
        daemon = ReservationDaemon(
            DaemonConfig(port=0, seed=3, shard_index=0, shard_count=3)
        )
        await daemon.start()
        try:
            client = ServiceClient("127.0.0.1", daemon.port)
            shard_map = daemon.service.shard_map
            all_ids = daemon.service.grid.registry.resource_ids()
            foreign = next(
                rid for rid in all_ids if shard_map.shard_of(rid) != 0
            )
            with pytest.raises(ServiceClientError) as unowned:
                await client.reserve("s-x", {foreign: 1.0})
            assert unowned.value.status == 409
            # availability reports only the owned slice
            availability = await client.availability()
            assert availability["shard"] == 0
            for rid in availability["resources"]:
                assert shard_map.shard_of(rid) == 0
            await client.aclose()
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())


def test_expired_lease_is_reaped_by_the_daemon():
    async def scenario():
        daemon = ReservationDaemon(DaemonConfig(port=0, seed=3, lease_ttl=0.05))
        await daemon.start()
        try:
            client = ServiceClient("127.0.0.1", daemon.port)
            availability = await client.availability()
            rid, fields = next(iter(sorted(availability["resources"].items())))
            outcome = await client.reserve("orphan", {rid: 1.0})
            assert outcome["reserved"] is True
            deadline = asyncio.get_running_loop().time() + 5.0
            while daemon.service.lease_counters["expired"] == 0:
                assert asyncio.get_running_loop().time() < deadline, (
                    "reaper never fired"
                )
                await asyncio.sleep(0.02)
            # The lease is gone and its capacity is back.
            with pytest.raises(ServiceClientError) as late:
                await client.commit(outcome["lease_id"])
            assert late.value.status == 404
            report = capacity_conservation(
                daemon.service.grid.registry, daemon.service.grid.proxies
            )
            assert report.ok, report.describe()
            assert daemon.service.log.count("lease.expired") == 1
            await client.aclose()
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# offline reconciliation


def _grant(resource, requested, *, session="s", available=100.0, shard=None):
    attributes = {"requested": requested, "available": available, "capacity": 100.0}
    return {
        "kind": "broker.grant",
        "seq": 1,
        "wall": 0.0,
        "session": session,
        "resource": resource,
        "attributes": attributes,
    }


def _release(resource, amount, *, session="s"):
    return {
        "kind": "broker.release",
        "seq": 2,
        "wall": 0.0,
        "session": session,
        "resource": resource,
        "attributes": {"amount": amount},
    }


def test_reconcile_flags_double_release():
    report = reconcile_shard_events({"a": [_release("cpu:H1", 5.0)]})
    assert not report.ok
    assert "double release" in report.violations[0]


def test_reconcile_flags_exclusive_ownership_breach():
    report = reconcile_shard_events(
        {
            "a": [_grant("cpu:H1", 1.0, session="s1")],
            "b": [_grant("cpu:H1", 1.0, session="s2")],
        }
    )
    assert not report.ok
    assert "exclusive" in report.violations[0]


def test_reconcile_flags_leaked_aborted_lease():
    events = [
        _grant("cpu:H1", 3.0),
        {
            "kind": "lease.aborted",
            "seq": 3,
            "wall": 0.0,
            "session": "s",
            "resource": None,
            "attributes": {},
        },
    ]
    report = reconcile_shard_events({"a": events})
    assert not report.ok
    assert "lease leak" in report.violations[0]


def test_reconcile_flags_over_grant():
    report = reconcile_shard_events({"a": [_grant("cpu:H1", 500.0)]})
    assert not report.ok
    assert "over-grant" in report.violations[0]


def test_reconcile_accepts_balanced_books_and_counts_cross_shard():
    report = reconcile_shard_events(
        {
            "a": [_grant("cpu:H1", 3.0), _release("cpu:H1", 3.0)],
            "b": [_grant("cpu:H2", 2.0)],
        }
    )
    assert report.ok, report.describe()
    assert report.outstanding["b"] == {"cpu:H2": 2.0}
    assert report.cross_shard_sessions == 1  # "s" touched both shards


def test_reconcile_truncated_log_skips_balance_checks():
    events = [
        _release("cpu:H1", 5.0),
        {
            "kind": "log.truncated",
            "seq": 9,
            "wall": 0.0,
            "session": None,
            "resource": None,
            "attributes": {},
        },
    ]
    report = reconcile_shard_events({"a": events})
    assert report.truncated == ["a"]
    assert report.ok, report.describe()


def test_reconcile_cli_gates_on_violations(tmp_path):
    from repro.obs.cli import main as obs_main

    clean = {
        "schema_version": 4,
        "events": [_grant("cpu:H1", 3.0), _release("cpu:H1", 3.0)],
    }
    dirty = {"schema_version": 4, "events": [_release("cpu:H2", 5.0)]}
    clean_path = tmp_path / "shard0.json"
    dirty_path = tmp_path / "shard1.json"
    clean_path.write_text(json.dumps(clean))
    dirty_path.write_text(json.dumps(dirty))
    assert obs_main(["reconcile", str(clean_path)]) == 0
    assert obs_main(["reconcile", str(clean_path), str(dirty_path)]) == 1
