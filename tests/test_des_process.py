"""Tests for generator-based processes: resumption, interrupts, failure."""

import pytest

from repro.des import Environment, Interrupt, Process


class TestBasics:
    def test_requires_generator(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_process_returns_generator_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(2)
            return 99

        process = env.process(proc(env))
        env.run()
        assert process.value == 99
        assert not process.is_alive

    def test_timeout_value_is_sent_back_in(self):
        env = Environment()
        seen = []

        def proc(env):
            value = yield env.timeout(1, value="hello")
            seen.append(value)

        env.process(proc(env))
        env.run()
        assert seen == ["hello"]

    def test_processes_can_wait_on_each_other(self):
        env = Environment()

        def child(env):
            yield env.timeout(5)
            return "child-result"

        def parent(env):
            result = yield env.process(child(env))
            return f"got {result} at {env.now}"

        parent_process = env.process(parent(env))
        env.run()
        assert parent_process.value == "got child-result at 5.0"

    def test_waiting_on_already_finished_process(self):
        env = Environment()

        def quick(env):
            return 7
            yield  # pragma: no cover - makes this a generator

        def waiter(env, target):
            yield env.timeout(10)
            value = yield target
            return value

        target = env.process(quick(env))
        waiter_process = env.process(waiter(env, target))
        env.run()
        assert waiter_process.value == 7

    def test_yielding_non_event_fails_the_process(self):
        env = Environment()

        def bad(env):
            yield 42

        process = env.process(bad(env))
        with pytest.raises(RuntimeError, match="non-event"):
            env.run()
        assert process.triggered

    def test_exception_in_process_propagates_if_unwaited(self):
        env = Environment()

        def bad(env):
            yield env.timeout(1)
            raise ValueError("kaput")

        env.process(bad(env))
        with pytest.raises(ValueError, match="kaput"):
            env.run()

    def test_exception_can_be_caught_by_waiter(self):
        env = Environment()

        def bad(env):
            yield env.timeout(1)
            raise ValueError("kaput")

        def waiter(env, target):
            try:
                yield target
            except ValueError as exc:
                return f"caught {exc}"

        waiter_process = env.process(waiter(env, env.process(bad(env))))
        env.run()
        assert waiter_process.value == "caught kaput"


class TestInterrupt:
    def test_interrupt_wakes_sleeper(self):
        env = Environment()

        def sleeper(env):
            try:
                yield env.timeout(100)
                return "overslept"
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, env.now)

        def interrupter(env, victim):
            yield env.timeout(4)
            victim.interrupt("wake up")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert victim.value == ("interrupted", "wake up", 4.0)

    def test_interrupted_process_can_keep_waiting(self):
        env = Environment()

        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                yield env.timeout(5)
                return env.now

        def interrupter(env, victim):
            yield env.timeout(2)
            victim.interrupt()

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert victim.value == 7.0

    def test_unhandled_interrupt_fails_process(self):
        env = Environment()

        def sleeper(env):
            yield env.timeout(100)

        def interrupter(env, victim):
            yield env.timeout(1)
            victim.interrupt("no handler")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        with pytest.raises(Interrupt):
            env.run()

    def test_cannot_interrupt_finished_process(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1)

        process = env.process(quick(env))
        env.run()
        with pytest.raises(RuntimeError):
            process.interrupt()

    def test_process_cannot_interrupt_itself(self):
        env = Environment()
        failures = []

        def selfish(env, me):
            yield env.timeout(1)
            try:
                me[0].interrupt()
            except RuntimeError as exc:
                failures.append(str(exc))

        holder = []
        holder.append(env.process(selfish(env, holder)))
        env.run()
        assert failures and "itself" in failures[0]

    def test_original_event_does_not_resume_twice_after_interrupt(self):
        env = Environment()
        resumed = []

        def sleeper(env):
            try:
                yield env.timeout(3)
                resumed.append("timeout")
            except Interrupt:
                resumed.append("interrupt")
            yield env.timeout(10)
            resumed.append("second sleep done")

        def interrupter(env, victim):
            yield env.timeout(1)
            victim.interrupt()

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert resumed == ["interrupt", "second sleep done"]
        assert env.now == 11.0
