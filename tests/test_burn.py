"""Burn-rate SLOs: spec validation, the engine's alert lifecycle.

Covers the PR's acceptance properties: an infra-failure burst fires the
availability alert only when *both* windows burn past the threshold
(one bad scrape never pages), the incident emits exactly one firing and
one resolved ``slo.burn_rate`` event plus one ``slo.budget_exhausted``,
the rolling budget recovers once errors age out of the budget window,
and the latency SLO burns on the merged cross-shard phase histogram.
"""

import pytest

from repro.obs.events import EventLog
from repro.obs.prom import parse_exposition
from repro.obs.slo import BurnRateSLO
from repro.obs.burn import BurnRateEngine, default_cluster_slos
from repro.obs.telemetry import TimeSeriesStore


# ---------------------------------------------------------------------------
# spec validation


def test_burn_rate_slo_validates_fields():
    with pytest.raises(ValueError):
        BurnRateSLO(name="x", kind="availability", target=1.0,
                    good=("g",), bad=("b",))
    with pytest.raises(ValueError):
        BurnRateSLO(name="x", kind="availability", target=0.99)  # no good/bad
    with pytest.raises(ValueError):
        BurnRateSLO(name="x", kind="latency", target=0.99)  # no histogram
    with pytest.raises(ValueError):
        BurnRateSLO(name="x", kind="latency", target=0.99,
                    histogram="h", latency_bound=0.0)
    with pytest.raises(ValueError):
        BurnRateSLO(name="x", kind="availability", target=0.99,
                    good=("g",), bad=("b",),
                    short_window=30.0, long_window=5.0)
    with pytest.raises(ValueError):
        BurnRateSLO(name="x", kind="wrong", target=0.99,
                    good=("g",), bad=("b",))


def test_burn_rate_slo_from_dict():
    slo = BurnRateSLO.from_dict({
        "name": "avail",
        "kind": "availability",
        "target": 0.999,
        "good": 'total{verdict="ok"}',     # bare string coerced to tuple
        "bad": ['total{verdict="bad"}'],
        "burn_threshold": 10.0,
    })
    assert slo.good == ('total{verdict="ok"}',)
    assert slo.error_budget == pytest.approx(0.001)
    with pytest.raises(ValueError):
        BurnRateSLO.from_dict({"name": "x", "kind": "availability",
                               "target": 0.99, "good": ["g"], "bad": ["b"],
                               "surprise": 1})


def test_default_cluster_slos_shape():
    slos = default_cluster_slos(short_window=2.0, long_window=4.0,
                                budget_window=8.0)
    by_name = {slo.name: slo for slo in slos}
    avail = by_name["admission-availability"]
    assert avail.kind == "availability"
    assert avail.role == "cluster-router"
    assert any("rejected_infra" in sel for sel in avail.bad)
    latency = by_name["admission-latency"]
    assert latency.kind == "latency"
    assert latency.role == "shard"
    assert latency.budget_window == 8.0
    BurnRateEngine(slos, TimeSeriesStore())  # unique names accepted
    with pytest.raises(ValueError):
        BurnRateEngine(slos + [avail], TimeSeriesStore())


# ---------------------------------------------------------------------------
# the engine, against a hand-fed store


def feed_router(store: TimeSeriesStore, ts: float, *,
                established: float, infra: float, merit: float = 0.0):
    text = (
        "# TYPE repro_cluster_admissions_total counter\n"
        f'repro_cluster_admissions_total{{verdict="established"}} {established}\n'
        f'repro_cluster_admissions_total{{verdict="rejected_merit"}} {merit}\n'
        f'repro_cluster_admissions_total{{verdict="rejected_infra"}} {infra}\n'
    )
    store.record_scrape("router:1", parse_exposition(text), ts=ts,
                        role="cluster-router")


AVAIL = BurnRateSLO(
    name="avail", kind="availability", target=0.99,
    good=('repro_cluster_admissions_total{verdict="established"}',
          'repro_cluster_admissions_total{verdict="rejected_merit"}'),
    bad=('repro_cluster_admissions_total{verdict="rejected_infra"}',),
    role="cluster-router",
    short_window=2.0, long_window=4.0, budget_window=8.0,
    burn_threshold=5.0,
)


def slo_events(log):
    return [
        (event["kind"], event["attributes"].get("state"))
        for event in log.to_dicts()
        if event["kind"].startswith("slo.")
    ]


def test_availability_incident_lifecycle():
    store = TimeSeriesStore()
    log = EventLog()
    engine = BurnRateEngine([AVAIL], store, event_log=log)

    # Healthy traffic: no burn, full budget.
    feed_router(store, 0.0, established=0, infra=0)
    feed_router(store, 1.0, established=10, infra=0)
    (status,) = engine.evaluate(now=1.0)
    assert status.state == "ok"
    assert status.burn_short == 0.0
    assert status.budget_remaining == 1.0
    assert engine.firing() == []
    assert slo_events(log) == []

    # A shard dies: every admission in the next scrape is an infra
    # rejection.  Both windows burn far past 5x -> one firing event.
    feed_router(store, 2.0, established=10, infra=8)
    (status,) = engine.evaluate(now=2.0)
    assert status.state == "firing"
    assert status.burn_short > AVAIL.burn_threshold
    assert status.burn_long > AVAIL.burn_threshold
    assert status.budget_remaining < 0.0
    assert engine.firing() == ["avail"]
    assert slo_events(log) == [
        ("slo.burn_rate", "firing"), ("slo.budget_exhausted", None),
    ]

    # Steady firing state: no duplicate events.
    engine.evaluate(now=2.5)
    assert slo_events(log) == [
        ("slo.burn_rate", "firing"), ("slo.budget_exhausted", None),
    ]
    assert engine.min_budget("avail") < 0.0

    # Recovery: counters go quiet; once the errors age past every
    # window the alert resolves and the budget returns to 1.0.
    feed_router(store, 11.0, established=10, infra=8)
    (status,) = engine.evaluate(now=11.0)
    assert status.state == "ok"
    assert status.budget_remaining == 1.0
    assert engine.firing() == []
    events = slo_events(log)
    assert events == [
        ("slo.burn_rate", "firing"), ("slo.budget_exhausted", None),
        ("slo.burn_rate", "resolved"),
    ]
    # The low-water mark survives recovery -- that is the CI assertion.
    assert engine.min_budget("avail") < 0.0 < status.budget_remaining
    resolved = [e for e in log.to_dicts()
                if e["attributes"].get("state") == "resolved"]
    assert resolved[0]["attributes"]["firing_seconds"] == pytest.approx(9.0)


def test_short_spike_alone_does_not_fire():
    """One bad scrape burns the short window but not the long one."""
    slo = BurnRateSLO(
        name="avail", kind="availability", target=0.99,
        good=AVAIL.good, bad=AVAIL.bad, role="cluster-router",
        short_window=1.5, long_window=30.0, budget_window=30.0,
        burn_threshold=5.0,
    )
    store = TimeSeriesStore()
    log = EventLog()
    engine = BurnRateEngine([slo], store, event_log=log)
    # A long healthy history, then one bad scrape.
    feed_router(store, 0.0, established=0, infra=0)
    for ts in range(1, 25):
        feed_router(store, float(ts), established=40.0 * ts, infra=0)
    feed_router(store, 25.0, established=40.0 * 25, infra=5)
    (status,) = engine.evaluate(now=25.0)
    assert status.burn_short > slo.burn_threshold
    assert status.burn_long < slo.burn_threshold
    assert status.state == "ok"
    assert slo_events(log) == []


def test_latency_slo_burns_on_merged_histogram():
    slo = BurnRateSLO(
        name="latency", kind="latency", target=0.9,
        histogram="repro_daemon_admission_phase_seconds",
        latency_bound=0.1, role="shard",
        short_window=2.0, long_window=4.0, budget_window=8.0,
        burn_threshold=2.0,
    )
    store = TimeSeriesStore()
    log = EventLog()
    engine = BurnRateEngine([slo], store, event_log=log)

    def feed_shard(target, shard, ts, fast, total, sum_seconds):
        text = (
            "# TYPE repro_daemon_admission_phase_seconds histogram\n"
            'repro_daemon_admission_phase_seconds_bucket'
            f'{{le="0.1",phase="plan"}} {fast}\n'
            'repro_daemon_admission_phase_seconds_bucket'
            f'{{le="+Inf",phase="plan"}} {total}\n'
            f"repro_daemon_admission_phase_seconds_sum{{phase=\"plan\"}} "
            f"{sum_seconds}\n"
            f"repro_daemon_admission_phase_seconds_count{{phase=\"plan\"}} "
            f"{total}\n"
        )
        store.record_scrape(target, parse_exposition(text), ts=ts,
                            role="shard", shard=shard)

    feed_shard("a:1", "shard-0", 0.0, fast=0, total=0, sum_seconds=0.0)
    feed_shard("b:2", "shard-1", 0.0, fast=0, total=0, sum_seconds=0.0)
    # Shard a stays fast; shard b's planner grinds: 4 of 8 cluster-wide
    # observations exceed the bound -> error rate 0.5, burn 5 > 2.
    feed_shard("a:1", "shard-0", 1.0, fast=4, total=4, sum_seconds=0.1)
    feed_shard("b:2", "shard-1", 1.0, fast=0, total=4, sum_seconds=2.0)
    (status,) = engine.evaluate(now=1.0)
    assert status.error_rate_short == pytest.approx(0.5)
    assert status.state == "firing"
    assert slo_events(log) == [
        ("slo.burn_rate", "firing"), ("slo.budget_exhausted", None),
    ]

    # With no scraped histogram at all the error rate reads 0.
    empty = BurnRateEngine([slo], TimeSeriesStore(), event_log=EventLog())
    (status,) = empty.evaluate(now=1.0)
    assert status.error_rate_short == 0.0
    assert status.state == "ok"
