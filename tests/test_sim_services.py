"""Tests for the figure-10 service definitions and diversity compression."""

import pytest

from repro.core import build_qrg
from repro.core.dijkstra import enumerate_paths
from repro.sim.services import (
    FAMILY_A,
    FAMILY_B,
    SERVICE_FAMILIES,
    build_evaluation_services,
    compress_diversity,
    compressed_service_families,
    family_of_service,
)

#: All reservation paths enumerated in the paper's Tables 1 and 2 --
#: they must all exist as structural paths in our requirement tables.
TABLE_1_PATHS = [
    "Qa-Qb-Qe-Qh-Ql-Qp",
    "Qa-Qc-Qf-Qh-Ql-Qp",
    "Qa-Qb-Qe-Qi-Qm-Qp",
    "Qa-Qc-Qf-Qi-Qm-Qp",
    "Qa-Qc-Qf-Qj-Qn-Qp",
    "Qa-Qd-Qg-Qj-Qn-Qp",
    "Qa-Qb-Qe-Qi-Qm-Qq",
    "Qa-Qc-Qf-Qi-Qm-Qq",
    "Qa-Qd-Qg-Qj-Qn-Qq",
    "Qa-Qc-Qf-Qk-Qo-Qq",
    "Qa-Qd-Qg-Qk-Qo-Qq",
]

TABLE_2_PATHS = [
    "Qa-Qb-Qd-Qf-Qi-Ql",
    "Qa-Qc-Qe-Qf-Qi-Ql",
    "Qa-Qb-Qd-Qg-Qj-Ql",
    "Qa-Qc-Qe-Qg-Qj-Ql",
    "Qa-Qb-Qd-Qh-Qk-Ql",
    "Qa-Qc-Qe-Qh-Qk-Ql",
    "Qa-Qb-Qd-Qf-Qi-Qm",
    "Qa-Qc-Qe-Qf-Qi-Qm",
    "Qa-Qb-Qd-Qg-Qj-Qm",
    "Qa-Qc-Qe-Qg-Qj-Qm",
    "Qa-Qb-Qd-Qh-Qk-Qm",
    "Qa-Qc-Qe-Qh-Qk-Qm",
]


def paths_of_family(family, service_name="S"):
    """All source->sink path signatures under ample availability."""
    from repro.core import AvailabilitySnapshot, Binding

    service = family.build_service(service_name)
    binding = Binding(
        {
            ("cS", "hS"): "r:hS",
            ("cP", "hP"): "r:hP",
            ("cP", "lPS"): "r:lPS",
            ("cC", "lCP"): "r:lCP",
        }
    )
    snapshot = AvailabilitySnapshot.from_amounts(
        {"r:hS": 1e6, "r:hP": 1e6, "r:lPS": 1e6, "r:lCP": 1e6}
    )
    qrg = build_qrg(service, binding, snapshot)
    signatures = set()
    for sink in qrg.sink_nodes():
        for path in enumerate_paths(qrg.source_node, sink, qrg.successors):
            nodes = [qrg.source_node.label] + [n.label for n, _w, _e in path]
            signatures.add("-".join(nodes))
    return signatures


class TestFamilyStructure:
    def test_all_table1_paths_exist(self):
        signatures = paths_of_family(FAMILY_A)
        for path in TABLE_1_PATHS:
            assert path in signatures, path

    def test_all_table2_paths_exist(self):
        signatures = paths_of_family(FAMILY_B)
        for path in TABLE_2_PATHS:
            assert path in signatures, path

    def test_family_assignment_matches_paper(self):
        # figure 10(a) for S1 and S4; figure 10(b) for S2 and S3
        assert SERVICE_FAMILIES["S1"] is FAMILY_A
        assert SERVICE_FAMILIES["S4"] is FAMILY_A
        assert SERVICE_FAMILIES["S2"] is FAMILY_B
        assert SERVICE_FAMILIES["S3"] is FAMILY_B
        assert family_of_service("S2").key == "B"
        with pytest.raises(Exception):
            family_of_service("S9")

    def test_rankings(self):
        service_a = FAMILY_A.build_service("S1")
        assert service_a.ranking.labels == ("Qp", "Qq", "Qr")
        assert service_a.ranking.numeric_level("Qp") == 3
        service_b = FAMILY_B.build_service("S2")
        assert service_b.ranking.labels == ("Ql", "Qm", "Qn")

    def test_no_level3_path_dominates_another(self):
        """The trade-off property: among level-3 paths, none is
        component-wise cheaper-or-equal than another (otherwise the
        minimax choice degenerates and the path census collapses)."""
        from repro.core import AvailabilitySnapshot, Binding

        for family, top in ((FAMILY_A, "Qp"), (FAMILY_B, "Ql")):
            service = family.build_service("S")
            binding = Binding(
                {
                    ("cS", "hS"): "r:hS",
                    ("cP", "hP"): "r:hP",
                    ("cP", "lPS"): "r:lPS",
                    ("cC", "lCP"): "r:lCP",
                }
            )
            snapshot = AvailabilitySnapshot.from_amounts(
                {"r:hS": 1e6, "r:hP": 1e6, "r:lPS": 1e6, "r:lCP": 1e6}
            )
            qrg = build_qrg(service, binding, snapshot)
            sink = next(n for n in qrg.sink_nodes() if n.label == top)
            profiles = []
            for path in enumerate_paths(qrg.source_node, sink, qrg.successors):
                totals = {}
                for _node, _w, edge in path:
                    if edge is None:
                        continue
                    for rid, amount in edge.bound.items():
                        totals[rid] = totals.get(rid, 0.0) + amount
                profiles.append(totals)
            for i, a in enumerate(profiles):
                for j, b in enumerate(profiles):
                    if i == j:
                        continue
                    dominated = all(a[k] <= b[k] for k in a) and any(a[k] < b[k] for k in a)
                    assert not dominated, (family.key, i, j, a, b)

    def test_build_evaluation_services(self):
        services = build_evaluation_services()
        assert set(services) == {"S1", "S2", "S3", "S4"}
        assert services["S1"].graph.is_chain()


class TestDiversityCompression:
    def test_preserves_mean_per_slot(self):
        compressed = compress_diversity(FAMILY_A, ratio=3.0)
        for original_table, new_table in (
            (FAMILY_A.proxy_table, compressed.proxy_table),
            (FAMILY_A.client_table, compressed.client_table),
            (FAMILY_A.server_table, compressed.server_table),
        ):
            slots = {s for req in original_table.values() for s in req}
            for slot in slots:
                old = [req[slot] for req in original_table.values()]
                new = [req[slot] for req in new_table.values()]
                assert sum(new) / len(new) == pytest.approx(sum(old) / len(old))

    def test_limits_ratio_to_3_to_1(self):
        compressed = compress_diversity(FAMILY_B, ratio=3.0)
        for table in (compressed.proxy_table, compressed.client_table):
            slots = {s for req in table.values() for s in req}
            for slot in slots:
                values = [req[slot] for req in table.values()]
                assert max(values) / min(values) == pytest.approx(3.0)

    def test_preserves_rank_order(self):
        compressed = compress_diversity(FAMILY_A, ratio=3.0)
        keys = sorted(FAMILY_A.client_table)
        old = [FAMILY_A.client_table[k]["lCP"] for k in keys]
        new = [compressed.client_table[k]["lCP"] for k in keys]
        old_order = sorted(range(len(old)), key=lambda i: old[i])
        new_order = sorted(range(len(new)), key=lambda i: new[i])
        assert old_order == new_order

    def test_single_entry_slot_keeps_mean(self):
        compressed = compress_diversity(FAMILY_B, ratio=3.0)
        # server table of family B has 2 entries; ratio must be exactly 3
        values = [req["hS"] for req in compressed.server_table.values()]
        assert max(values) / min(values) == pytest.approx(3.0)

    def test_invalid_ratio_rejected(self):
        with pytest.raises(Exception):
            compress_diversity(FAMILY_A, ratio=0.5)

    def test_compressed_families_cover_all_services(self):
        families = compressed_service_families(3.0)
        assert set(families) == {"S1", "S2", "S3", "S4"}
        assert families["S1"].key.startswith("A/compressed")

    def test_compressed_service_still_has_all_paths(self):
        compressed = compress_diversity(FAMILY_A, ratio=3.0)
        signatures = paths_of_family(compressed)
        for path in TABLE_1_PATHS:
            assert path in signatures
