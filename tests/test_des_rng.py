"""Tests for named random streams: determinism and independence."""

import numpy as np
import pytest

from repro.des import RandomStreams


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a = RandomStreams(42)
        b = RandomStreams(42)
        assert [a.uniform("x", 0, 1) for _ in range(5)] == [
            b.uniform("x", 0, 1) for _ in range(5)
        ]

    def test_different_seeds_differ(self):
        a = RandomStreams(1)
        b = RandomStreams(2)
        assert a.uniform("x", 0, 1) != b.uniform("x", 0, 1)

    def test_streams_are_independent_of_creation_order(self):
        a = RandomStreams(7)
        _ = a.uniform("first", 0, 1)
        value_a = a.uniform("second", 0, 1)
        b = RandomStreams(7)
        value_b = b.uniform("second", 0, 1)
        assert value_a == value_b

    def test_consuming_one_stream_does_not_shift_another(self):
        a = RandomStreams(7)
        for _ in range(100):
            a.uniform("noise", 0, 1)
        value_a = a.exponential("arrivals", 1.0)
        b = RandomStreams(7)
        value_b = b.exponential("arrivals", 1.0)
        assert value_a == value_b

    def test_spawn_is_deterministic_and_distinct(self):
        parent = RandomStreams(3)
        child1 = parent.spawn("rep1")
        child2 = parent.spawn("rep2")
        again = RandomStreams(3).spawn("rep1")
        assert child1.uniform("x", 0, 1) == again.uniform("x", 0, 1)
        assert child1.seed != child2.seed


class TestValidationAndHelpers:
    def test_seed_must_be_int(self):
        with pytest.raises(TypeError):
            RandomStreams("seed")

    def test_exponential_mean_positive(self):
        with pytest.raises(ValueError):
            RandomStreams(0).exponential("x", 0)

    def test_uniform_range_validated(self):
        with pytest.raises(ValueError):
            RandomStreams(0).uniform("x", 2, 1)

    def test_choice_weighted(self):
        streams = RandomStreams(0)
        picks = {streams.choice_weighted("c", ["a", "b"], [0.0, 1.0]) for _ in range(20)}
        assert picks == {"b"}

    def test_choice_weighted_validates(self):
        streams = RandomStreams(0)
        with pytest.raises(ValueError):
            streams.choice_weighted("c", ["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            streams.choice_weighted("c", ["a", "b"], [0.0, 0.0])

    def test_getitem_and_contains(self):
        streams = RandomStreams(0)
        generator = streams["mine"]
        assert isinstance(generator, np.random.Generator)
        assert "mine" in streams
        assert "other" not in streams
        assert list(streams.names()) == ["mine"]

    def test_exponential_statistics(self):
        streams = RandomStreams(123)
        draws = [streams.exponential("e", 2.0) for _ in range(4000)]
        assert abs(np.mean(draws) - 2.0) < 0.15
