"""Tests for DOT/JSON exports (figure 4-5 regeneration)."""

import json

from repro.analysis.export import plan_to_dict, qrg_to_dot, result_to_dict
from repro.core import BasicPlanner, build_qrg
from repro.sim import SimulationConfig, WorkloadSpec, run_simulation


class TestDot:
    def test_qrg_without_plan_is_figure4(self, small_service, small_binding, ample_snapshot):
        qrg = build_qrg(small_service, small_binding, ample_snapshot)
        dot = qrg_to_dot(qrg)
        assert dot.startswith("digraph QRG")
        # clusters per component, like the dotted rectangles of figure 4
        assert 'label="c1"' in dot and 'label="c2"' in dot
        # intra edges labelled with psi values; equivalences dashed
        assert 'label="0.100"' in dot  # Qa->Qb = 10/100
        assert "style=dashed" in dot
        assert "red" not in dot

    def test_qrg_with_plan_is_figure5(self, small_service, small_binding, ample_snapshot):
        qrg = build_qrg(small_service, small_binding, ample_snapshot)
        plan = BasicPlanner().plan(qrg)
        dot = qrg_to_dot(qrg, plan)
        # the selected path is emphasised ("thicker edges" of figure 5)
        assert dot.count("penwidth=2.5") >= len(plan.assignments)
        assert "fillcolor" in dot

    def test_dot_is_balanced(self, small_service, small_binding, ample_snapshot):
        qrg = build_qrg(small_service, small_binding, ample_snapshot)
        dot = qrg_to_dot(qrg)
        assert dot.count("{") == dot.count("}")


class TestJsonExports:
    def test_plan_round_trips_through_json(self, small_service, small_binding, ample_snapshot):
        qrg = build_qrg(small_service, small_binding, ample_snapshot)
        plan = BasicPlanner().plan(qrg)
        payload = plan_to_dict(plan)
        decoded = json.loads(json.dumps(payload))
        assert decoded["end_to_end_label"] == "Qf"
        assert decoded["demand"] == {"cpu:H1": 10.0, "net:L1": 20.0}
        assert len(decoded["assignments"]) == 2

    def test_result_export(self):
        result = run_simulation(
            SimulationConfig(seed=0, workload=WorkloadSpec(rate_per_60tu=80, horizon=200))
        )
        payload = json.loads(json.dumps(result_to_dict(result)))
        assert payload["algorithm"] == "basic"
        assert payload["attempts"] == result.metrics.attempts
        assert 0.0 <= payload["success_rate"] <= 1.0
        assert len(payload["class_rows"]) == 4
