"""Tests for the §5.1 workload generator."""

import numpy as np
import pytest

from repro.des import RandomStreams
from repro.sim.workload import (
    PopularityDrift,
    SessionArrival,
    SessionClassifier,
    WorkloadGenerator,
    WorkloadSpec,
)


def take(generator, n=None):
    requests = list(generator.generate())
    return requests if n is None else requests[:n]


class TestSpecValidation:
    def test_defaults_match_paper(self):
        spec = WorkloadSpec()
        assert spec.horizon == 10800.0
        assert spec.p_normal == pytest.approx(1 / 3)  # normal:fat = 1:2
        assert spec.p_short == pytest.approx(2 / 3)  # long:short = 1:2
        assert spec.fat_factors == (2.0, 10.0)
        assert spec.short_range == (20.0, 60.0)
        assert spec.long_range == (60.0, 600.0)

    def test_rate_positive(self):
        with pytest.raises(Exception):
            WorkloadSpec(rate_per_60tu=0)

    def test_fat_factors_exceed_one(self):
        with pytest.raises(Exception):
            WorkloadSpec(fat_factors=(1.0,), fat_weights=(1.0,))

    def test_weights_length_checked(self):
        with pytest.raises(Exception):
            WorkloadSpec(fat_factors=(2.0,), fat_weights=(0.5, 0.5))

    def test_mean_interarrival(self):
        assert WorkloadSpec(rate_per_60tu=120).mean_interarrival == 0.5


class TestGeneration:
    def spec(self, **kw):
        return WorkloadSpec(rate_per_60tu=600, horizon=600, **kw)

    def test_deterministic_given_seed(self):
        a = take(WorkloadGenerator(self.spec(), RandomStreams(5)))
        b = take(WorkloadGenerator(self.spec(), RandomStreams(5)))
        assert [(r.arrival_time, r.service, r.domain) for r in a] == [
            (r.arrival_time, r.service, r.domain) for r in b
        ]

    def test_arrivals_ordered_and_within_horizon(self):
        requests = take(WorkloadGenerator(self.spec(), RandomStreams(1)))
        times = [r.arrival_time for r in requests]
        assert times == sorted(times)
        assert all(0 < t < 600 for t in times)

    def test_rate_is_approximately_right(self):
        requests = take(WorkloadGenerator(self.spec(), RandomStreams(2)))
        # 600 sessions per 60 TU over 600 TU ~ 6000 sessions
        assert 5400 <= len(requests) <= 6600

    def test_durations_within_paper_range(self):
        requests = take(WorkloadGenerator(self.spec(), RandomStreams(3)))
        assert all(20.0 <= r.duration <= 600.0 for r in requests)

    def test_long_short_ratio(self):
        requests = take(WorkloadGenerator(self.spec(), RandomStreams(4)))
        long_fraction = np.mean([r.long for r in requests])
        assert long_fraction == pytest.approx(1 / 3, abs=0.03)

    def test_normal_fat_ratio(self):
        requests = take(WorkloadGenerator(self.spec(), RandomStreams(5)))
        fat_fraction = np.mean([r.fat for r in requests])
        assert fat_fraction == pytest.approx(2 / 3, abs=0.03)
        scales = {r.demand_scale for r in requests}
        assert scales == {1.0, 2.0, 10.0}

    def test_excluded_service_rule(self):
        requests = take(WorkloadGenerator(self.spec(), RandomStreams(6)))
        for r in requests:
            domain_index = int(r.domain[1:])
            excluded = f"S{(domain_index + 1) // 2}"
            assert r.service != excluded, r

    def test_domains_roughly_uniform(self):
        requests = take(WorkloadGenerator(self.spec(), RandomStreams(7)))
        counts = {d: 0 for d in self.spec().domains}
        for r in requests:
            counts[r.domain] += 1
        expected = len(requests) / 8
        for domain, count in counts.items():
            assert abs(count - expected) < 0.25 * expected, (domain, count)

    def test_custom_exclusion_map(self):
        generator = WorkloadGenerator(
            self.spec(), RandomStreams(8), excluded_service={"D1": "S3"}
        )
        requests = [r for r in take(generator) if r.domain == "D1"]
        assert requests
        assert all(r.service != "S3" for r in requests)

    def test_session_ids_unique(self):
        requests = take(WorkloadGenerator(self.spec(), RandomStreams(9)))
        ids = [r.session_id for r in requests]
        assert len(set(ids)) == len(ids)


class TestPopularityDrift:
    def test_weights_sum_to_one(self):
        drift = PopularityDrift(["S1", "S2", "S3"], np.random.default_rng(0), period=100.0)
        weights = drift.weights_at(50.0)
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_piecewise_constant(self):
        drift = PopularityDrift(["S1", "S2"], np.random.default_rng(0), period=100.0)
        assert drift.weights_at(10.0) == drift.weights_at(99.0)
        assert drift.weights_at(10.0) != drift.weights_at(150.0)

    def test_query_pattern_independence(self):
        a = PopularityDrift(["S1", "S2"], np.random.default_rng(3), period=100.0)
        b = PopularityDrift(["S1", "S2"], np.random.default_rng(3), period=100.0)
        # a queried in order, b queried out of order: same interval values
        a0, a3 = a.weights_at(0.0), a.weights_at(350.0)
        b3, b0 = b.weights_at(350.0), b.weights_at(0.0)
        assert a0 == b0 and a3 == b3

    def test_period_validated(self):
        with pytest.raises(Exception):
            PopularityDrift(["S1"], np.random.default_rng(0), period=0.0)


class TestClassifier:
    def test_class_names(self):
        assert SessionClassifier.classify(False, False) == "norm.-short"
        assert SessionClassifier.classify(False, True) == "norm.-long"
        assert SessionClassifier.classify(True, False) == "fat-short"
        assert SessionClassifier.classify(True, True) == "fat-long"
        assert len(SessionClassifier.CLASSES) == 4


class TestSessionArrival:
    """The renamed workload-side record and its protocol converter."""

    def make(self, **overrides):
        fields = dict(
            session_id="sess-1",
            arrival_time=0.0,
            domain="D1",
            service="S2",
            demand_scale=1.0,
            duration=30.0,
        )
        fields.update(overrides)
        return SessionArrival(**fields)

    def test_duration_boundary_matches_classifier(self):
        # long_range includes its lower bound, so a draw of exactly 60.0
        # is a *long* session; the old `duration > 60.0` check disagreed
        # with SessionClassifier and miscounted boundary draws.
        assert not self.make(duration=59.999).long
        assert self.make(duration=60.0).long
        assert self.make(duration=60.001).long
        boundary = SessionClassifier.LONG_BOUNDARY
        assert self.make(duration=boundary).long == SessionClassifier.is_long(boundary)
        assert self.make(duration=60.0).session_class == "norm.-long"
        assert self.make(duration=60.0, demand_scale=2.0).session_class == "fat-long"

    def test_generated_arrivals_agree_with_classifier(self):
        generator = WorkloadGenerator(
            WorkloadSpec(rate_per_60tu=240.0, horizon=120.0), RandomStreams(5)
        )
        for arrival in generator.generate():
            assert arrival.long == SessionClassifier.is_long(arrival.duration)
            assert arrival.session_class in SessionClassifier.CLASSES

    def test_deprecated_session_request_alias(self):
        import repro.sim.workload as workload

        with pytest.warns(DeprecationWarning, match="SessionArrival"):
            alias = workload.SessionRequest
        assert alias is SessionArrival
        with pytest.raises(AttributeError):
            workload.does_not_exist

    def test_to_session_request_converter(self):
        from repro.runtime.messages import SessionRequest as ProtocolRequest

        arrival = self.make(demand_scale=2.0)
        binding = object()
        hosts = {"cS": "H1", "cP": "H2", "cC": "D1"}
        request = arrival.to_session_request(
            binding, component_hosts=hosts, source_label="D1"
        )
        assert isinstance(request, ProtocolRequest)
        assert request.session_id == arrival.session_id
        assert request.service_name == arrival.service
        assert request.binding is binding
        assert request.component_hosts == hosts
        assert request.source_label == "D1"
        assert request.demand_scale == 2.0
