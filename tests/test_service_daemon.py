"""The reservation service daemon: API, event plane, shutdown, identity.

Covers the PR's acceptance properties end to end over real sockets:
concurrent establish/teardown races stay consistent, a slow WebSocket
subscriber is truncated (marked, bounded, isolated) without touching the
daemon or its fast peers, shutdown drains in-flight admissions while
refusing new ones, and the daemon's admission decisions are
byte-identical to driving the coordinator in-process with the same
seeded workload.
"""

import asyncio
import json

import pytest

from repro.des.rng import RandomStreams
from repro.service import (
    DaemonConfig,
    ReservationDaemon,
    ReservationService,
    ServiceClient,
    ServiceClientError,
    TRUNCATION_KIND,
)
from repro.service.events import EventPlane
from repro.service.loadgen import LoadGenConfig, arrival_payload, run_load
from repro.sim.workload import WorkloadGenerator, WorkloadSpec

#: (service, domain) pairs that all clear the §5.1 exclusion rule.
VALID_PAIRS = [
    ("S2", "D1"), ("S3", "D2"), ("S4", "D3"), ("S1", "D4"),
    ("S1", "D5"), ("S2", "D6"), ("S1", "D7"), ("S2", "D8"),
]


def pair_for(index: int):
    return VALID_PAIRS[index % len(VALID_PAIRS)]


async def start_daemon(**overrides) -> ReservationDaemon:
    overrides.setdefault("port", 0)
    daemon = ReservationDaemon(DaemonConfig(**overrides))
    await daemon.start()
    return daemon


# ---------------------------------------------------------------------------
# admission API basics


def test_establish_teardown_roundtrip():
    async def scenario():
        daemon = await start_daemon(seed=3)
        try:
            client = ServiceClient("127.0.0.1", daemon.port)
            outcome = await client.establish(
                service="S2", domain="D1", session_id="s-1", duration=30.0
            )
            assert outcome["success"] is True
            assert outcome["label"] in {"Qh", "Ql", "Qm"}
            assert outcome["level"] in {1, 2, 3}
            single = await client.query(session_id="s-1")
            assert single["service"] == "S2" and single["domain"] == "D1"
            released = await client.teardown("s-1")
            assert released["released"] > 0
            state = await client.query()
            assert state["active_sessions"] == 0
            assert state["counters"]["established"] == 1
            assert state["counters"]["torn_down"] == 1
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())


def test_api_error_statuses():
    async def scenario():
        daemon = await start_daemon(seed=3)
        try:
            client = ServiceClient("127.0.0.1", daemon.port)
            await client.establish(service="S2", domain="D1", session_id="dup")
            with pytest.raises(ServiceClientError) as duplicate:
                await client.establish(service="S2", domain="D1", session_id="dup")
            assert duplicate.value.status == 409
            with pytest.raises(ServiceClientError) as excluded:
                # D1's excluded service is S1: server and proxy co-locate.
                await client.establish(service="S1", domain="D1")
            assert excluded.value.status == 400
            with pytest.raises(ServiceClientError) as unknown:
                await client.teardown("never-established")
            assert unknown.value.status == 404
            with pytest.raises(ServiceClientError) as missing:
                await client.query(session_id="never-established")
            assert missing.value.status == 404
            with pytest.raises(ServiceClientError) as empty_batch:
                await client.establish_batch([])
            assert empty_batch.value.status == 400
            with pytest.raises(ServiceClientError) as no_route:
                await client._call("GET", "/v1/nope")
            assert no_route.value.status == 405
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())


def test_metrics_exposition_is_scrapable():
    async def scenario():
        daemon = await start_daemon(seed=3)
        try:
            client = ServiceClient("127.0.0.1", daemon.port)
            await client.establish(service="S2", domain="D1", session_id="m-1")
            text = await client.metrics()
            assert "repro_broker_grants_total" in text
            assert "repro_coordinator_establish_seconds_count" in text
            for line in text.splitlines():
                if line.startswith("#") or not line:
                    continue
                value = line.rsplit(" ", 1)[1]
                # Exposition values parse as Prometheus floats, never
                # Python's lowercase inf/nan spellings.
                assert value not in {"inf", "-inf", "nan"}
                float(value.replace("+Inf", "inf").replace("-Inf", "-inf"))
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# concurrency


def test_concurrent_establish_teardown_races_stay_consistent():
    async def scenario():
        daemon = await start_daemon(seed=5)
        try:
            client = ServiceClient("127.0.0.1", daemon.port)
            admitted = 0
            rejected = 0

            async def one(index: int):
                nonlocal admitted, rejected
                service, domain = pair_for(index)
                outcome = await client.establish(
                    service=service, domain=domain, session_id=f"race-{index}"
                )
                if outcome["success"]:
                    admitted += 1
                    await client.teardown(f"race-{index}")
                else:
                    rejected += 1

            await asyncio.gather(*(one(i) for i in range(32)))
            state = await client.query()
            assert admitted + rejected == 32
            assert state["active_sessions"] == 0
            assert state["counters"]["established"] == admitted
            assert state["counters"]["rejected"] == rejected
            assert state["counters"]["torn_down"] == admitted
            # Everything released: no broker retains load from the race
            # (beyond float dust from reserve/release accumulation).
            assert all(u < 1e-9 for u in state["utilization"].values())
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())


def test_duplicate_session_race_admits_exactly_once():
    async def scenario():
        daemon = await start_daemon(seed=5)
        try:
            client = ServiceClient("127.0.0.1", daemon.port)

            async def claim():
                try:
                    outcome = await client.establish(
                        service="S2", domain="D1", session_id="contested"
                    )
                    return outcome["success"]
                except ServiceClientError as exc:
                    assert exc.status == 409
                    return False

            outcomes = await asyncio.gather(*(claim() for _ in range(8)))
            assert sum(outcomes) == 1
            state = await client.query()
            assert state["active_sessions"] == 1
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# the event plane


async def _collect_events(client, sink, **kwargs):
    async for event in client.events(**kwargs):
        sink.append(event)


def test_slow_subscriber_is_truncated_and_isolated():
    async def scenario():
        daemon = await start_daemon(seed=7)
        try:
            client = ServiceClient("127.0.0.1", daemon.port)
            slow, fast = [], []
            # queue=2 is the minimum bound: one establish emits an order
            # of magnitude more events than that in one synchronous
            # burst, so the slow stream must truncate deterministically.
            slow_task = asyncio.create_task(
                _collect_events(client, slow, queue=2)
            )
            fast_task = asyncio.create_task(_collect_events(client, fast))
            await asyncio.sleep(0.1)

            await client.establish(service="S2", domain="D1", session_id="ev-1")
            await asyncio.sleep(0.1)  # let the burst flush to both streams
            await client.establish(service="S3", domain="D2", session_id="ev-2")
            await asyncio.sleep(0.2)

            markers = [e for e in slow if e.get("kind") == TRUNCATION_KIND]
            assert markers, f"no {TRUNCATION_KIND} marker in {slow!r}"
            assert markers[0]["dropped"] > 0
            # The fast subscriber saw the full stream, unmarked.
            assert not any(e.get("kind") == TRUNCATION_KIND for e in fast)
            real_slow = [e for e in slow if e.get("kind") != TRUNCATION_KIND]
            assert len(fast) > len(real_slow)
            assert len(real_slow) + sum(m["dropped"] for m in markers) <= len(fast)
            # Admissions were never blocked by the stalled consumer.
            state = await client.query()
            assert state["counters"]["established"] == 2
            assert state["event_log"]["fanned_out"] == len(fast)
        finally:
            await daemon.shutdown()
        for task in (slow_task, fast_task):
            task.cancel()
        await asyncio.gather(slow_task, fast_task, return_exceptions=True)

    asyncio.run(scenario())


def test_websocket_close_releases_subscriber():
    async def scenario():
        daemon = await start_daemon(seed=7)
        try:
            client = ServiceClient("127.0.0.1", daemon.port)
            sink = []
            task = asyncio.create_task(_collect_events(client, sink))
            await asyncio.sleep(0.1)
            assert daemon.service.plane.subscriber_count == 1
            # Client-side close must wake the idle sender (no events are
            # flowing) and release the subscription.
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)
            await asyncio.sleep(0.2)
            assert daemon.service.plane.subscriber_count == 0
            assert daemon.stats.websocket_clients == 0
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())


def test_event_plane_marker_recovery_unit():
    # Unit-level: after a drop window, the first delivery with room is
    # the marker, then the triggering payload.
    class _Event:
        def __init__(self, seq):
            self.seq = seq

        def to_dict(self):
            return {"kind": "session.admitted", "seq": self.seq}

    plane = EventPlane(queue_size=4)
    subscriber = plane.subscribe(queue_size=2)
    plane._subscribers[subscriber.subscriber_id] = subscriber
    for seq in range(5):
        plane._deliver(_Event(seq))
    # 2 queued, 3 dropped.
    assert subscriber.total_dropped == 3
    assert subscriber.queue.get_nowait()["seq"] == 0
    assert subscriber.queue.get_nowait()["seq"] == 1
    plane._deliver(_Event(5))
    marker = subscriber.queue.get_nowait()
    assert marker["kind"] == TRUNCATION_KIND
    assert marker["dropped"] == 3
    assert marker["resume_seq"] == 5
    assert subscriber.queue.get_nowait()["seq"] == 5


# ---------------------------------------------------------------------------
# graceful shutdown


def test_shutdown_drains_inflight_and_refuses_new_admissions():
    async def scenario():
        daemon = await start_daemon(seed=9)
        client = ServiceClient("127.0.0.1", daemon.port)
        # Hold the admission lock so an in-flight request is provably
        # mid-admission when shutdown begins.
        await daemon._lock.acquire()
        inflight = asyncio.create_task(
            client.establish(service="S2", domain="D1", session_id="drain-1")
        )
        await asyncio.sleep(0.1)
        shutdown = asyncio.create_task(daemon.shutdown(drain=True))
        await asyncio.sleep(0.1)
        assert not shutdown.done()  # waiting on the drain barrier
        # New admissions are refused the moment draining starts...
        with pytest.raises(ServiceClientError) as refused:
            await client.establish(service="S3", domain="D2", session_id="late")
        assert refused.value.status == 503
        # ...but the in-flight one completes once the lock frees.
        daemon._lock.release()
        outcome = await inflight
        assert outcome["success"] is True
        await shutdown
        # The daemon is gone: the socket no longer accepts connections.
        with pytest.raises((ConnectionError, OSError)):
            await client.healthz()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# byte-identity with the in-process coordinator


def _seeded_operations(count: int = 24):
    """(op, payload) admission script from a seeded workload."""
    spec = WorkloadSpec(rate_per_60tu=240.0, horizon=60.0)
    generator = WorkloadGenerator(spec, RandomStreams(13))
    operations = []
    for index, arrival in enumerate(generator.generate()):
        if len(operations) >= count:
            break
        operations.append(("establish", arrival_payload(arrival)))
        if index % 3 == 2:
            operations.append(
                ("teardown", {"session_id": arrival.session_id})
            )
    return operations


def test_daemon_decisions_byte_identical_to_in_process():
    config = dict(seed=23, algorithm="basic")
    operations = _seeded_operations()

    async def through_api():
        daemon = await start_daemon(**config)
        try:
            client = ServiceClient("127.0.0.1", daemon.port)
            bodies = []
            for op, payload in operations:
                response = await client.request("POST", f"/v1/{op}", payload)
                assert response.status == 200
                bodies.append(response.body)
            return bodies
        finally:
            await daemon.shutdown()

    api_bodies = asyncio.run(through_api())

    service = ReservationService(DaemonConfig(port=0, **config))
    service.start()
    try:
        local_bodies = []
        for op, payload in operations:
            document = getattr(service, op)(payload)
            local_bodies.append(
                json.dumps(document, sort_keys=True).encode("utf-8")
            )
    finally:
        service.close()

    assert api_bodies == local_bodies


# ---------------------------------------------------------------------------
# the load generator


def test_load_generator_open_loop_run():
    async def scenario():
        daemon = await start_daemon(seed=11)
        try:
            config = LoadGenConfig(
                workload=WorkloadSpec(rate_per_60tu=600.0, horizon=5.0),
                seed=7,
                time_scale=0.002,
                max_hold_seconds=0.05,
            )
            report = await run_load("127.0.0.1", daemon.port, config)
            assert report.errors == 0
            assert report.sessions == report.admitted + report.rejected
            assert report.torn_down == report.admitted
            assert report.peak_inflight >= 2
            headline = report.headline()
            assert headline["throughput_per_wall_second"] > 0
            assert (
                headline["admission_latency_p50_ms"]
                <= headline["admission_latency_p99_ms"]
            )
            state = await ServiceClient("127.0.0.1", daemon.port).query()
            assert state["active_sessions"] == 0
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())


def test_load_generator_batch_mode():
    async def scenario():
        daemon = await start_daemon(seed=11)
        try:
            config = LoadGenConfig(
                workload=WorkloadSpec(rate_per_60tu=600.0, horizon=3.0),
                seed=7,
                time_scale=0.001,
                max_hold_seconds=0.02,
                batch=4,
            )
            report = await run_load("127.0.0.1", daemon.port, config)
            assert report.errors == 0
            assert report.admitted + report.rejected == report.sessions
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())
