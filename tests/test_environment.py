"""Tests for the figure-9 GridEnvironment assembly."""

import pytest

from repro.core.errors import ModelError
from repro.des import Environment, RandomStreams
from repro.sim.environment import GridEnvironment, _pair_id


@pytest.fixture
def grid():
    return GridEnvironment(Environment(), RandomStreams(0))


class TestAssembly:
    def test_resource_inventory(self, grid):
        ids = grid.resource_ids()
        cpu = [r for r in ids if r.startswith("cpu:")]
        links = [r for r in ids if r.startswith("link:")]
        nets = [r for r in ids if r.startswith("net:")]
        assert len(cpu) == 4
        assert len(links) == 14
        # 6 host-host pairs + 8 proxy-domain pairs
        assert len(nets) == 14

    def test_capacities_within_range(self, grid):
        for host, broker in grid.cpu_brokers.items():
            assert 1000.0 <= broker.capacity <= 4000.0
        for link_id, broker in grid.link_brokers.items():
            assert 1000.0 <= broker.capacity <= 4000.0

    def test_capacity_range_configurable(self):
        grid = GridEnvironment(
            Environment(), RandomStreams(0), capacity_range=(10.0, 20.0)
        )
        assert all(10 <= b.capacity <= 20 for b in grid.cpu_brokers.values())

    def test_invalid_capacity_range(self):
        with pytest.raises(ModelError):
            GridEnvironment(Environment(), RandomStreams(0), capacity_range=(0, 10))

    def test_every_resource_owned_by_exactly_one_proxy(self, grid):
        for resource_id in grid.resource_ids():
            if resource_id.startswith("link:"):
                continue  # raw links are fronted by their path brokers
            owners = [p.host for p in grid.proxies.values() if p.owns(resource_id)]
            assert len(owners) == 1, (resource_id, owners)

    def test_model_store_has_all_services(self, grid):
        assert set(grid.model_store.names()) == {"S1", "S2", "S3", "S4"}

    def test_deterministic_given_seed(self):
        a = GridEnvironment(Environment(), RandomStreams(7))
        b = GridEnvironment(Environment(), RandomStreams(7))
        assert [x.capacity for x in a.cpu_brokers.values()] == [
            x.capacity for x in b.cpu_brokers.values()
        ]


class TestSessionWiring:
    def test_binding_for_session(self, grid):
        binding = grid.binding_for("S4", "D2")  # server H4, proxy H1
        assert binding.resource_id("cS", "hS") == "cpu:H4"
        assert binding.resource_id("cP", "hP") == "cpu:H1"
        assert binding.resource_id("cP", "lPS") == _pair_id("H4", "H1")
        assert binding.resource_id("cC", "lCP") == _pair_id("H1", "D2")

    def test_component_hosts(self, grid):
        hosts = grid.component_hosts_for("S4", "D2")
        assert hosts == {"cS": "H4", "cP": "H1", "cC": "D2"}

    def test_excluded_combination_rejected(self, grid):
        # D1's proxy is H1 = S1's server; §5.1 forbids this session
        with pytest.raises(ModelError, match="co-locate"):
            grid.binding_for("S1", "D1")

    def test_excluded_service_rule(self, grid):
        assert grid.excluded_service_for_domain("D1") == "S1"
        assert grid.excluded_service_for_domain("D2") == "S1"
        assert grid.excluded_service_for_domain("D7") == "S4"

    def test_unknown_names(self, grid):
        with pytest.raises(ModelError):
            grid.server_of_service("S9")
        with pytest.raises(ModelError):
            grid.proxy_host_of_domain("D99")

    def test_lps_and_lcp_use_disjoint_links(self, grid):
        """server->proxy rides a core link; proxy->client rides the access
        link -- no sharing, matching the paper's independent treatment."""
        binding = grid.binding_for("S4", "D2")
        lps = grid.path_brokers[binding.resource_id("cP", "lPS")]
        lcp = grid.path_brokers[binding.resource_id("cC", "lCP")]
        lps_links = {l.link_id for l in lps.links}
        lcp_links = {l.link_id for l in lcp.links}
        assert lps_links.isdisjoint(lcp_links)

    def test_pair_id_is_order_insensitive(self):
        assert _pair_id("H2", "H1") == _pair_id("H1", "H2") == "net:H1-H2"
