"""The repro.faults subsystem: plans, injection, recovery, conservation.

The three contracts under test:

* **Determinism** -- a fault plan (and every decision derived from it)
  is a pure function of ``(config, seed, horizon, hosts)``, and a
  faulty simulation is a pure function of its config;
* **Zero-fault byte-identity** -- with an all-zero :class:`FaultConfig`
  the fault-tolerant coordinators delegate verbatim to their parents:
  same ``EstablishmentResult``s, same full-simulation metrics;
* **No capacity leaks** -- whatever is injected, the brokers' and
  proxies' reservation books agree (``capacity_conservation``) and the
  registry is quiescent once sessions are torn down and orphaned
  leases reaped.
"""

import pytest

from repro.brokers import (
    BrokerRegistry,
    LinkBandwidthBroker,
    LocalResourceBroker,
    PathBroker,
)
from repro.core import BasicPlanner
from repro.core.errors import ModelError
from repro.faults import (
    CapacityConservationError,
    FaultConfig,
    FaultInjector,
    FaultPlan,
    FaultTolerantCoordinator,
    FaultyCoordinator,
    assert_capacity_conserved,
    capacity_conservation,
)
from repro.obs import EventLog, ObservabilityConfig, event_logging
from repro.runtime import ModelStore, QoSProxy, ReservationCoordinator
from repro.runtime.messages import PlanSegment
from repro.sim import SimulationConfig, WorkloadSpec, run_simulation

HOSTS = ("H1", "H2", "H3")


def faulty_config(**kw):
    defaults = dict(
        seed=11,
        workload=WorkloadSpec(rate_per_60tu=100.0, horizon=250.0),
        faults=FaultConfig(drop_rate=0.1, crash_rate=0.1, stale_rate=0.1),
    )
    defaults.update(kw)
    return SimulationConfig(**defaults)


def build_ft_rig(small_service, injector, env=None):
    """The test_coordinator_edges rig, with the fault-tolerant flavour."""
    registry = BrokerRegistry()
    clock = (lambda: env.now) if env is not None else None
    cpu = LocalResourceBroker("H1", "cpu", 100.0, clock=clock)
    link = LinkBandwidthBroker("L1", "H1", "H2", 100.0, clock=clock)
    path = PathBroker("net:L1", [link], clock=clock)
    for broker in (cpu, link, path):
        registry.register(broker)
    proxy_h1 = QoSProxy("H1", registry)
    proxy_h1.own("cpu:H1")
    proxy_h2 = QoSProxy("H2", registry)
    proxy_h2.own("net:L1")
    store = ModelStore()
    store.register(small_service)
    proxies = {"H1": proxy_h1, "H2": proxy_h2}
    coordinator = FaultTolerantCoordinator(
        registry, store, proxies, injector=injector, env=env
    )
    return registry, coordinator, proxies


class ScriptedInjector(FaultInjector):
    """An injector whose per-channel decisions come from a fixed script.

    ``script`` maps a message channel to the fault kinds (or ``None``)
    of its successive calls; exhausted scripts deliver everything.
    Fired faults are recorded/emitted exactly like real ones.
    """

    def __init__(self, script, *, clock=None):
        # A non-zero config so the coordinator takes the tolerant path.
        plan = FaultPlan.generate(
            FaultConfig(drop_rate=0.5), seed=1, horizon=0.0, hosts=()
        )
        super().__init__(plan, clock=clock)
        self.script = {channel: list(entries) for channel, entries in script.items()}

    def message_fault(self, channel, host, session):
        entries = self.script.get(channel)
        if entries:
            kind = entries.pop(0)
            if kind is not None:
                self._record(kind, host=host, session=session, channel=channel)
                return kind
        return None

    def message_delay(self, channel, host, session):
        return 0.0

    def stale_age_for(self, host, session):
        return None


# -- FaultConfig / FaultPlan ------------------------------------------------


class TestFaultConfig:
    def test_default_is_zero(self):
        assert FaultConfig().is_zero

    def test_any_rate_makes_it_nonzero(self):
        for knob in ("drop_rate", "delay_rate", "crash_rate", "partition_rate", "stale_rate"):
            assert not FaultConfig(**{knob: 0.1}).is_zero

    @pytest.mark.parametrize(
        "bad",
        [
            dict(drop_rate=1.5),
            dict(stale_rate=-0.1),
            dict(crash_rate=-1.0),
            dict(lease_ttl=0.0),
            dict(crash_duration=-3.0),
            dict(max_retries=-1),
            dict(backoff_jitter=-0.5),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ModelError):
            FaultConfig(**bad)


class TestFaultPlan:
    def test_same_inputs_same_plan(self):
        config = FaultConfig(crash_rate=2.0, partition_rate=1.0)
        a = FaultPlan.generate(config, seed=42, horizon=600.0, hosts=HOSTS)
        b = FaultPlan.generate(config, seed=42, horizon=600.0, hosts=HOSTS)
        assert a == b
        assert a.windows and a.windows == b.windows

    def test_different_seed_different_windows(self):
        config = FaultConfig(crash_rate=2.0)
        a = FaultPlan.generate(config, seed=1, horizon=600.0, hosts=HOSTS)
        b = FaultPlan.generate(config, seed=2, horizon=600.0, hosts=HOSTS)
        assert a.windows != b.windows

    def test_adding_a_host_preserves_other_schedules(self):
        config = FaultConfig(crash_rate=2.0)
        small = FaultPlan.generate(config, seed=3, horizon=600.0, hosts=("H1", "H2"))
        grown = FaultPlan.generate(config, seed=3, horizon=600.0, hosts=HOSTS)
        for host in ("H1", "H2"):
            assert small.windows_for(host) == grown.windows_for(host)

    def test_windows_per_host_never_overlap(self):
        config = FaultConfig(crash_rate=10.0, crash_duration=15.0)
        plan = FaultPlan.generate(config, seed=5, horizon=2000.0, hosts=HOSTS)
        for host in HOSTS:
            windows = plan.windows_for(host)
            assert windows, "a 10/60TU rate over 2000 TU must produce windows"
            for earlier, later in zip(windows, windows[1:]):
                assert earlier.end <= later.start

    def test_active_window_lookup(self):
        config = FaultConfig(crash_rate=2.0, crash_duration=20.0)
        plan = FaultPlan.generate(config, seed=7, horizon=600.0, hosts=("H1",))
        window = plan.windows_for("H1")[0]
        assert plan.active_window("H1", window.start) is window
        assert plan.active_window("H1", window.end) is not window
        assert plan.active_window("H9", window.start) is None

    def test_zero_plan(self):
        assert FaultPlan.zero().is_zero
        assert FaultPlan.generate(
            FaultConfig(), seed=0, horizon=600.0, hosts=HOSTS
        ).is_zero


class TestFaultInjector:
    def test_disabled_injector_is_zero_and_never_fires(self):
        injector = FaultInjector.disabled()
        assert injector.is_zero
        for channel in ("availability", "reserve", "ack", "release"):
            assert injector.message_fault(channel, "H1", "s1") is None
            assert injector.message_delay(channel, "H1", "s1") == 0.0
        assert injector.stale_age_for("H1", "s1") is None
        assert injector.injected == []

    def test_unknown_channel_rejected(self):
        with pytest.raises(ValueError, match="unknown message channel"):
            FaultInjector.disabled().message_fault("gossip", "H1", "s1")

    def test_decisions_replay_identically(self):
        config = FaultConfig(drop_rate=0.3, delay_rate=0.3, stale_rate=0.3)
        plan = FaultPlan.generate(config, seed=9, horizon=600.0, hosts=HOSTS)

        def run_one():
            injector = FaultInjector(plan)
            decisions = []
            for n in range(200):
                host = HOSTS[n % len(HOSTS)]
                decisions.append(injector.message_fault("reserve", host, "s"))
                decisions.append(injector.message_delay("ack", host, "s"))
                decisions.append(injector.stale_age_for(host, "s"))
                decisions.append(injector.backoff(n % 3))
            return decisions, injector.injected_counts()

        assert run_one() == run_one()

    def test_outage_window_beats_the_drop_draw(self):
        config = FaultConfig(crash_rate=2.0, crash_duration=20.0)
        plan = FaultPlan.generate(config, seed=9, horizon=600.0, hosts=("H1",))
        window = plan.windows_for("H1")[0]
        injector = FaultInjector(plan, clock=lambda: window.start + 1.0)
        assert injector.message_fault("reserve", "H1", "s1") == "broker_crash"
        assert injector.injected_counts() == {"broker_crash": 1}

    def test_backoff_is_bounded(self):
        config = FaultConfig(
            drop_rate=0.1, backoff_base=0.25, backoff_cap=4.0, backoff_jitter=0.5
        )
        plan = FaultPlan.generate(config, seed=1, horizon=0.0, hosts=())
        injector = FaultInjector(plan)
        for attempt in range(8):
            delay = injector.backoff(attempt)
            assert 0.25 <= delay <= 4.0 * 1.5


# -- zero-fault byte-identity ----------------------------------------------


class TestZeroFaultIdentity:
    def test_direct_results_match_plain_coordinator(self, small_service, small_binding):
        registry, ft, proxies = build_ft_rig(small_service, FaultInjector.disabled())
        plain_registry = BrokerRegistry()
        cpu = LocalResourceBroker("H1", "cpu", 100.0)
        link = LinkBandwidthBroker("L1", "H1", "H2", 100.0)
        path = PathBroker("net:L1", [link])
        for broker in (cpu, link, path):
            plain_registry.register(broker)
        p1 = QoSProxy("H1", plain_registry)
        p1.own("cpu:H1")
        p2 = QoSProxy("H2", plain_registry)
        p2.own("net:L1")
        store = ModelStore()
        store.register(small_service)
        plain = ReservationCoordinator(plain_registry, store, {"H1": p1, "H2": p2})

        for n in range(6):
            a = ft.establish(f"s{n}", "small", small_binding, BasicPlanner())
            b = plain.establish(f"s{n}", "small", small_binding, BasicPlanner())
            assert a == b
        assert ft.teardown("s0") == plain.teardown("s0")

    def test_alias_is_the_tolerant_coordinator(self):
        assert FaultyCoordinator is FaultTolerantCoordinator

    def test_simulation_metrics_identical(self):
        base = dict(seed=11, workload=WorkloadSpec(rate_per_60tu=100.0, horizon=250.0))
        plain = run_simulation(SimulationConfig(**base))
        zero = run_simulation(SimulationConfig(faults=FaultConfig(), **base))
        assert zero.metrics == plain.metrics
        assert zero.paths == plain.paths
        assert zero.fault_stats == {"orphans_reaped": 0}


# -- faulty full simulations -----------------------------------------------


class TestFaultySimulation:
    def test_deterministic_given_seed(self):
        a = run_simulation(faulty_config())
        b = run_simulation(faulty_config())
        assert a.metrics == b.metrics
        assert a.fault_stats == b.fault_stats
        assert sum(a.fault_stats.values()) > 0

    def test_different_fault_seed_differs(self):
        a = run_simulation(faulty_config(seed=11))
        b = run_simulation(faulty_config(seed=12))
        assert a.fault_stats != b.fault_stats or a.metrics != b.metrics

    def test_every_injected_fault_reaches_the_event_log(self, tmp_path):
        trace = tmp_path / "trace.json"
        result = run_simulation(
            faulty_config(
                observability=ObservabilityConfig(trace_path=str(trace))
            )
        )
        injected = sum(
            count
            for kind, count in result.fault_stats.items()
            if kind != "orphans_reaped"
        )
        assert injected > 0
        import json

        document = json.loads(trace.read_text())
        assert document["event_counts"].get("fault.injected", 0) == injected

    def test_cli_summarize_renders_the_fault_section(self, tmp_path, capsys):
        from repro.obs.cli import main

        trace = tmp_path / "trace.json"
        run_simulation(
            faulty_config(observability=ObservabilityConfig(trace_path=str(trace)))
        )
        assert main(["summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "fault injection (" in out
        assert "faults fired" in out

    def test_parallel_sweep_matches_serial_under_faults(self):
        from repro.sim.experiment import (
            ParallelSweepRunner,
            SerialSweepRunner,
            run_configs,
        )

        configs = [faulty_config(seed=s) for s in (3, 4)]
        serial = run_configs(configs, runner=SerialSweepRunner())
        # clamp_to_cpus=False forces a real pool even on a 1-CPU box:
        # the process boundary is the thing under test.
        parallel = run_configs(
            configs, runner=ParallelSweepRunner(max_workers=2, clamp_to_cpus=False)
        )
        for s, p in zip(serial, parallel):
            assert p.metrics == s.metrics
            assert p.fault_stats == s.fault_stats
            assert sum(p.fault_stats.values()) > 0

    def test_fault_summary_aggregates(self, tmp_path):
        from repro.obs.analyze import fault_summary, load_trace

        trace = tmp_path / "trace.json"
        run_simulation(
            faulty_config(observability=ObservabilityConfig(trace_path=str(trace)))
        )
        summary = fault_summary(load_trace(str(trace)))
        assert not summary.empty
        assert summary.total_injected == sum(summary.injected.values())
        assert all(count > 0 for count in summary.injected.values())


# -- the recovery protocol, scripted ---------------------------------------


class TestRecoveryProtocol:
    def test_lost_ack_then_lost_release_orphans_a_lease(
        self, small_service, small_binding
    ):
        # First phase-3 ack drops, its compensating release drops too:
        # the lease is orphaned; the bounded retry then commits.
        injector = ScriptedInjector(
            {"ack": ["message_drop"], "release": ["message_drop"]}
        )
        registry, coordinator, proxies = build_ft_rig(small_service, injector)
        log = EventLog()
        with event_logging(log):
            result = coordinator.establish("s1", "small", small_binding, BasicPlanner())
        assert result.success
        assert len(coordinator.pending_leases()) == 1

        # The orphan sits on both books: capacity is conserved mid-fault.
        assert capacity_conservation(registry, proxies).ok

        with event_logging(log):
            assert coordinator.reap_orphans(force=True) == 1
        assert coordinator.pending_leases() == ()
        assert coordinator.leases_reaped == 1
        assert [e.kind for e in log if e.kind == "lease.expired"] == ["lease.expired"]

        coordinator.teardown("s1")
        assert_capacity_conserved(registry, proxies)
        registry.assert_quiescent()

    def test_unexpired_orphans_survive_a_lazy_reap(self, small_service, small_binding):
        injector = ScriptedInjector(
            {"ack": ["message_drop"], "release": ["message_drop"]}
        )
        _registry, coordinator, _proxies = build_ft_rig(small_service, injector)
        coordinator.establish("s1", "small", small_binding, BasicPlanner())
        lease = coordinator.pending_leases()[0]
        assert coordinator.reap_orphans(now=lease.expires_at - 1.0) == 0
        assert coordinator.reap_orphans(now=lease.expires_at) == 1

    def test_teardown_retires_the_sessions_orphans(self, small_service, small_binding):
        injector = ScriptedInjector(
            {"ack": ["message_drop"], "release": ["message_drop"]}
        )
        registry, coordinator, proxies = build_ft_rig(small_service, injector)
        coordinator.establish("s1", "small", small_binding, BasicPlanner())
        assert len(coordinator.pending_leases()) == 1
        coordinator.teardown("s1")
        assert coordinator.pending_leases() == ()
        # The late reaper finds nothing; nothing is double-released.
        assert coordinator.reap_orphans(force=True) == 0
        assert_capacity_conserved(registry, proxies)
        registry.assert_quiescent()

    def test_exhausted_reserve_retries_exclude_the_host(
        self, small_service, small_binding
    ):
        # Every reserve to the first host is lost; the replan excludes it,
        # which leaves the binding infeasible -> clean rejection, no leak.
        retries = FaultConfig(drop_rate=0.5).max_retries
        injector = ScriptedInjector({"reserve": ["message_drop"] * (retries + 1)})
        registry, coordinator, proxies = build_ft_rig(small_service, injector)
        log = EventLog()
        with event_logging(log):
            result = coordinator.establish("s1", "small", small_binding, BasicPlanner())
        assert not result.success
        kinds = [event.kind for event in log]
        assert kinds.count("segment.timeout") == retries + 1
        assert kinds.count("segment.retry") == retries
        assert "session.replanned" in kinds
        replanned = next(e for e in log if e.kind == "session.replanned")
        assert replanned.attributes["reason"] == "host_unreachable"
        assert replanned.attributes["excluded"] == ["H1"]
        assert_capacity_conserved(registry, proxies)
        registry.assert_quiescent()

    def test_unreachable_availability_synthesises_zero_and_rejects(
        self, small_service, small_binding
    ):
        retries = FaultConfig(drop_rate=0.5).max_retries
        # Both proxies' availability exchanges fail on every attempt,
        # and on the replan too: the planner sees zero everywhere.
        script = {"availability": ["message_drop"] * (retries + 1) * 4}
        injector = ScriptedInjector(script)
        registry, coordinator, proxies = build_ft_rig(small_service, injector)
        result = coordinator.establish("s1", "small", small_binding, BasicPlanner())
        assert not result.success
        assert_capacity_conserved(registry, proxies)
        registry.assert_quiescent()


# -- the conservation checker ----------------------------------------------


class TestPerHostSkeletonInvalidation:
    def test_host_exclusion_keeps_other_hosts_skeletons_warm(
        self, small_service, small_binding
    ):
        from repro.core.component import Binding

        retries = FaultConfig(drop_rate=0.5).max_retries
        injector = ScriptedInjector({"reserve": ["message_drop"] * (retries + 1)})
        registry, coordinator, proxies = build_ft_rig(small_service, injector)
        # A second placement of the same service that avoids H1 entirely.
        cpu3 = LocalResourceBroker("H3", "cpu", 100.0)
        registry.register(cpu3)
        proxy_h3 = QoSProxy("H3", registry)
        proxy_h3.own("cpu:H3")
        coordinator.proxies["H3"] = proxy_h3
        proxies["H3"] = proxy_h3
        other_binding = Binding({("c1", "cpu"): "cpu:H3", ("c2", "net"): "net:L1"})

        cache = coordinator.qrg_skeletons
        # Warm both placements (extra=(1.0,) matches the coordinator's
        # demand_scale discriminator).
        cache.skeleton_for(small_service, small_binding, extra=(1.0,))
        cache.skeleton_for(small_service, other_binding, extra=(1.0,))
        assert cache.stats() == {"hits": 0, "misses": 2, "size": 2}

        # Exhausted reserve retries exclude H1; the exclusion must drop
        # only the H1-bound skeleton.  The replan then rebuilds it (the
        # extra miss below is the proof the drop happened), while the
        # H3 placement's entry survives the whole fault.
        result = coordinator.establish("s1", "small", small_binding, BasicPlanner())
        assert not result.success
        assert cache.stats() == {"hits": 1, "misses": 3, "size": 2}

        # Warm-speedup regression: the unaffected placement still hits.
        cache.skeleton_for(small_service, other_binding, extra=(1.0,))
        assert cache.stats() == {"hits": 2, "misses": 3, "size": 2}

    def test_unknown_host_invalidates_nothing(self, small_service, small_binding):
        injector = ScriptedInjector({})
        _registry, coordinator, _proxies = build_ft_rig(small_service, injector)
        coordinator.qrg_skeletons.skeleton_for(small_service, small_binding)
        assert coordinator.invalidate_qrg_cache_for_host("H9") == 0
        assert len(coordinator.qrg_skeletons) == 1
        # A known host drops exactly its bound skeletons.
        assert coordinator.invalidate_qrg_cache_for_host("H1") == 1
        assert len(coordinator.qrg_skeletons) == 0


class TestCapacityConservation:
    def test_clean_rig_conserves(self, small_service, small_binding):
        registry, coordinator, proxies = build_ft_rig(
            small_service, FaultInjector.disabled()
        )
        coordinator.establish("s1", "small", small_binding, BasicPlanner())
        report = capacity_conservation(registry, proxies)
        assert report.ok
        assert report.broker_outstanding == report.proxy_outstanding > 0
        assert "capacity conserved" in report.describe()

    def test_path_reservations_expand_to_links(self, small_service):
        registry, _coordinator, proxies = build_ft_rig(
            small_service, FaultInjector.disabled()
        )
        proxies["H2"].apply_segment(PlanSegment("s1", "H2", {"net:L1": 30.0}))
        report = capacity_conservation(registry, proxies)
        assert report.ok
        # The composite path resource is accounted in link coordinates.
        assert report.broker_reserved["link:L1"] == pytest.approx(30.0)
        assert "net:L1" not in report.broker_reserved

    def test_broker_side_leak_detected(self, small_service):
        registry, _coordinator, proxies = build_ft_rig(
            small_service, FaultInjector.disabled()
        )
        registry.broker("cpu:H1").reserve(25.0, "ghost")  # no proxy knows
        report = capacity_conservation(registry, proxies)
        assert not report.ok
        assert ("cpu:H1", 25.0, 0.0) in report.mismatches
        with pytest.raises(CapacityConservationError, match="NOT conserved"):
            assert_capacity_conserved(registry, proxies)

    def test_accepts_an_iterable_of_proxies(self, small_service, small_binding):
        registry, coordinator, proxies = build_ft_rig(
            small_service, FaultInjector.disabled()
        )
        coordinator.establish("s1", "small", small_binding, BasicPlanner())
        assert capacity_conservation(registry, list(proxies.values())).ok
