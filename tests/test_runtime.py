"""Tests for the runtime architecture: proxy, coordinator, sessions."""

import pytest

from repro.brokers import BrokerRegistry, LinkBandwidthBroker, LocalResourceBroker, PathBroker
from repro.core import BasicPlanner
from repro.core.errors import BrokerError
from repro.des import Environment
from repro.runtime import (
    AvailabilityRequest,
    ModelStore,
    QoSProxy,
    ReservationCoordinator,
    ServiceSession,
)


@pytest.fixture
def rig(small_service, small_binding):
    """Registry + two proxies + coordinator for the small service."""
    env = Environment()
    registry = BrokerRegistry()
    cpu = LocalResourceBroker("H1", "cpu", 100.0, clock=lambda: env.now)
    link = LinkBandwidthBroker("L1", "H1", "H2", 100.0, clock=lambda: env.now)
    path = PathBroker("net:L1", [link], clock=lambda: env.now)
    for broker in (cpu, link, path):
        registry.register(broker)
    proxy_h1 = QoSProxy("H1", registry)
    proxy_h1.own("cpu:H1")
    proxy_h2 = QoSProxy("H2", registry)
    proxy_h2.own("net:L1")
    store = ModelStore()
    store.register(small_service)
    coordinator = ReservationCoordinator(registry, store, {"H1": proxy_h1, "H2": proxy_h2})
    return env, registry, coordinator, proxy_h1, proxy_h2, cpu, link


class TestModelStore:
    def test_register_and_lookup(self, small_service):
        store = ModelStore()
        store.register(small_service)
        assert store.service("small") is small_service
        assert "small" in store
        assert store.names() == ("small",)

    def test_duplicate_rejected(self, small_service):
        store = ModelStore()
        store.register(small_service)
        with pytest.raises(Exception):
            store.register(small_service)

    def test_missing_service(self):
        with pytest.raises(Exception):
            ModelStore().service("ghost")


class TestProxy:
    def test_ownership(self, rig):
        _env, _registry, _coord, proxy_h1, _h2, *_ = rig
        assert proxy_h1.owns("cpu:H1")
        assert not proxy_h1.owns("net:L1")
        assert proxy_h1.owned_resources() == ("cpu:H1",)

    def test_cannot_own_unregistered(self, rig):
        _env, _registry, _coord, proxy_h1, *_ = rig
        with pytest.raises(BrokerError):
            proxy_h1.own("disk:H1")

    def test_report_covers_only_owned(self, rig):
        _env, _registry, _coord, proxy_h1, *_ = rig
        request = AvailabilityRequest("s1", ("cpu:H1", "net:L1"))
        report = proxy_h1.report_availability(request)
        assert set(report.observations) == {"cpu:H1"}
        assert report.proxy_host == "H1"

    def test_release_unknown_session_is_noop(self, rig):
        _env, _registry, _coord, proxy_h1, *_ = rig
        assert proxy_h1.release_session("ghost") == 0


class TestCoordinator:
    def test_successful_establishment(self, rig, small_binding):
        _env, registry, coordinator, *_rest, cpu, link = rig
        result = coordinator.establish(
            "s1", "small", small_binding, BasicPlanner(),
            component_hosts={"c1": "H1", "c2": "H2"},
        )
        assert result.success
        assert result.plan.end_to_end_label == "Qf"
        assert cpu.available == 90.0   # Qb costs 10
        assert link.available == 80.0  # Qd->Qf costs 20
        assert coordinator.proxies["H1"].running_components("s1") == ("c1",)
        coordinator.teardown("s1")
        registry.assert_quiescent()

    def test_no_feasible_plan(self, rig, small_binding):
        _env, registry, coordinator, *_rest, cpu, link = rig
        cpu.reserve(99.5, "hog")
        result = coordinator.establish("s1", "small", small_binding, BasicPlanner())
        assert not result.success
        assert result.reason == "no_feasible_plan"
        assert result.plan is None
        assert result.qos_level is None

    def test_fat_session_scaling(self, rig, small_binding):
        _env, _registry, coordinator, *_rest, cpu, link = rig
        result = coordinator.establish(
            "s1", "small", small_binding, BasicPlanner(), demand_scale=2.0
        )
        assert result.success
        assert cpu.available == 80.0  # 2 x 10
        assert link.available == 60.0  # 2 x 20

    def test_stale_observation_can_cause_admission_failure(self, rig, small_binding):
        env, registry, coordinator, *_rest, cpu, link = rig
        # Reserve most of the link now; a stale observation from before
        # sees plenty and plans for Qf, then phase 3 fails.
        env.run(until=5.0)
        link.reserve(95.0, "hog")

        def stale(resource_id):
            return 1.0  # observe as of t=1, before the hog

        result = coordinator.establish(
            "s1", "small", small_binding, BasicPlanner(), observed_at=stale
        )
        assert not result.success
        assert result.reason == "admission_failed"
        assert result.plan is not None  # a plan was computed on stale data
        assert result.failed_resource == "net:L1"
        # rollback left no leaks
        assert cpu.available == 100.0
        assert link.available == pytest.approx(5.0)

    def test_proxy_ownership_required(self, rig, small_binding):
        _env, registry, coordinator, proxy_h1, proxy_h2, *_ = rig
        coordinator_missing = ReservationCoordinator(
            registry, coordinator.model_store, {"H1": proxy_h1}
        )
        with pytest.raises(BrokerError, match="owns"):
            coordinator_missing.establish("s1", "small", small_binding, BasicPlanner())

    def test_teardown_counts_releases(self, rig, small_binding):
        _env, registry, coordinator, *_ = rig
        coordinator.establish("s1", "small", small_binding, BasicPlanner())
        released = coordinator.teardown("s1")
        assert released == 2
        registry.assert_quiescent()


class TestServiceSession:
    def test_full_lifecycle_on_des(self, rig, small_binding):
        env, registry, coordinator, *_rest, cpu, link = rig
        session = ServiceSession(
            env, coordinator, "s1", "small", small_binding, BasicPlanner(), duration=25.0
        )
        process = env.process(session.run())
        env.run()
        outcome = process.value
        assert outcome.success
        assert outcome.qos_level == 2
        assert outcome.ended_at == 25.0
        registry.assert_quiescent()

    def test_holds_resources_during_session(self, rig, small_binding):
        env, _registry, coordinator, *_rest, cpu, link = rig
        session = ServiceSession(
            env, coordinator, "s1", "small", small_binding, BasicPlanner(), duration=10.0
        )
        env.process(session.run())
        env.run(until=5.0)
        assert cpu.available == 90.0
        env.run()
        assert cpu.available == 100.0

    def test_failed_session_records_reason(self, rig, small_binding):
        env, _registry, coordinator, *_rest, cpu, link = rig
        cpu.reserve(99.0, "hog")
        outcomes = []
        session = ServiceSession(
            env, coordinator, "s1", "small", small_binding, BasicPlanner(),
            duration=10.0, on_finish=outcomes.append,
        )
        env.process(session.run())
        env.run()
        assert len(outcomes) == 1
        assert not outcomes[0].success
        assert outcomes[0].reason == "no_feasible_plan"

    def test_latency_mode_defers_establishment(self, rig, small_binding):
        env, registry, coordinator, *_rest, cpu, link = rig
        session = ServiceSession(
            env, coordinator, "s1", "small", small_binding, BasicPlanner(),
            duration=10.0, latency=2.0,
        )
        process = env.process(session.run())
        env.run(until=1.0)
        assert cpu.available == 100.0  # not reserved yet
        env.run()
        outcome = process.value
        assert outcome.success
        assert outcome.ended_at == 12.0  # latency + duration
        registry.assert_quiescent()

    def test_duration_must_be_positive(self, rig, small_binding):
        env, _registry, coordinator, *_ = rig
        with pytest.raises(Exception):
            ServiceSession(
                env, coordinator, "s1", "small", small_binding, BasicPlanner(), duration=0.0
            )

    def test_outcome_fat_flag(self, rig, small_binding):
        env, _registry, coordinator, *_ = rig
        session = ServiceSession(
            env, coordinator, "s1", "small", small_binding, BasicPlanner(),
            duration=5.0, demand_scale=2.0,
        )
        process = env.process(session.run())
        env.run()
        assert process.value.fat
