"""Tests for QoS vectors, levels, concatenation, and rankings."""

import pytest

from repro.core import IncomparableError, ModelError, QoSLevel, QoSRanking, QoSVector, concat_levels


class TestQoSVector:
    def test_requires_at_least_one_parameter(self):
        with pytest.raises(ModelError):
            QoSVector({})

    def test_rejects_bad_names_and_values(self):
        with pytest.raises(ModelError):
            QoSVector({"": 1})
        with pytest.raises(ModelError):
            QoSVector({"q": object()})

    def test_mapping_interface(self):
        vector = QoSVector({"rate": 30, "size": 480})
        assert vector["rate"] == 30
        assert len(vector) == 2
        assert set(vector) == {"rate", "size"}

    def test_equality_and_hash(self):
        a = QoSVector({"rate": 30, "size": 480})
        b = QoSVector(rate=30, size=480)
        assert a == b
        assert hash(a) == hash(b)
        assert a != QoSVector(rate=15, size=480)

    def test_partial_order(self):
        low = QoSVector(rate=15, size=240)
        high = QoSVector(rate=30, size=480)
        mixed = QoSVector(rate=30, size=240)
        assert low <= high and low < high
        assert high >= low and high > low
        assert low <= mixed and mixed <= high
        # incomparable pair under the product order
        other = QoSVector(rate=15, size=480)
        assert not (other <= mixed) and not (mixed <= other)

    def test_comparison_requires_same_parameters(self):
        a = QoSVector(rate=30)
        b = QoSVector(size=480)
        with pytest.raises(IncomparableError):
            _ = a <= b
        assert not a.comparable_with(b)
        assert a.comparable_with(QoSVector(rate=1))

    def test_string_numeric_mix_incomparable(self):
        a = QoSVector(codec="h261")
        b = QoSVector(codec=3)
        with pytest.raises(IncomparableError):
            _ = a <= b

    def test_concat_disjoint(self):
        merged = QoSVector(rate=30).concat(QoSVector(size=480))
        assert dict(merged) == {"rate": 30, "size": 480}

    def test_concat_collision_requires_prefixes(self):
        a = QoSVector(rate=30)
        with pytest.raises(ModelError):
            a.concat(QoSVector(rate=15))
        merged = a.concat(QoSVector(rate=15), prefixes=("u0.", "u1."))
        assert dict(merged) == {"u0.rate": 30, "u1.rate": 15}


class TestQoSLevel:
    def test_label_required(self):
        with pytest.raises(ModelError):
            QoSLevel("", QoSVector(q=1))

    def test_str_is_label(self):
        assert str(QoSLevel("Qa", QoSVector(q=1))) == "Qa"

    def test_concat_levels_single_passthrough(self):
        level = QoSLevel("Qa", QoSVector(q=1))
        assert concat_levels([level]) is level

    def test_concat_levels_merges_with_prefixes(self):
        a = QoSLevel("Qn", QoSVector(q=2))
        b = QoSLevel("Qp", QoSVector(q=1))
        merged = concat_levels([a, b])
        assert merged.label == "Qn|Qp"
        assert dict(merged.vector) == {"u0.q": 2, "u1.q": 1}

    def test_concat_levels_empty_rejected(self):
        with pytest.raises(ModelError):
            concat_levels([])


class TestQoSRanking:
    def test_basic_ranks(self):
        ranking = QoSRanking(["Qp", "Qq", "Qr"])
        assert ranking.rank("Qp") == 0
        assert ranking.numeric_level("Qp") == 3
        assert ranking.numeric_level("Qr") == 1
        assert ranking.better("Qp", "Qq")
        assert not ranking.better("Qq", "Qp")

    def test_best_and_sort(self):
        ranking = QoSRanking(["Qp", "Qq", "Qr"])
        assert ranking.best(["Qr", "Qq"]) == "Qq"
        assert ranking.best([]) is None
        assert ranking.sorted_best_first(["Qr", "Qp", "Qq"]) == ["Qp", "Qq", "Qr"]

    def test_unknown_label_raises(self):
        ranking = QoSRanking(["Qp"])
        with pytest.raises(ModelError):
            ranking.rank("Qz")

    def test_duplicates_rejected(self):
        with pytest.raises(ModelError):
            QoSRanking(["Qp", "Qp"])

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            QoSRanking([])

    def test_contains(self):
        ranking = QoSRanking(["Qp", "Qq"])
        assert "Qp" in ranking and "Qz" not in ranking
