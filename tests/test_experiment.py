"""Integration tests: full (small) simulation runs and their invariants."""

import pytest

from repro.sim import SimulationConfig, WorkloadSpec, run_simulation
from repro.sim.experiment import rate_sweep, sweep


def quick_config(**kw):
    defaults = dict(
        seed=1,
        workload=WorkloadSpec(rate_per_60tu=100, horizon=500),
    )
    defaults.update(kw)
    return SimulationConfig(**defaults)


class TestRunSimulation:
    def test_basic_run_completes(self):
        result = run_simulation(quick_config())
        assert result.metrics.attempts > 300
        assert 0.5 < result.success_rate <= 1.0
        assert 1.0 <= result.avg_qos_level <= 3.0
        assert result.wall_seconds > 0

    def test_deterministic_given_seed(self):
        a = run_simulation(quick_config())
        b = run_simulation(quick_config())
        assert a.metrics.attempts == b.metrics.attempts
        assert a.success_rate == b.success_rate
        assert a.avg_qos_level == b.avg_qos_level

    def test_different_seeds_differ(self):
        a = run_simulation(quick_config(seed=1))
        b = run_simulation(quick_config(seed=2))
        assert (a.metrics.attempts, a.success_rate) != (b.metrics.attempts, b.success_rate)

    def test_all_algorithms_run(self):
        for algorithm in ("basic", "tradeoff", "random"):
            result = run_simulation(quick_config(algorithm=algorithm))
            assert result.metrics.attempts > 0

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(Exception):
            quick_config(algorithm="mystery")

    def test_class_rows_cover_all_sessions(self):
        result = run_simulation(quick_config())
        total = sum(n for _name, _sr, _qos, n in result.metrics.class_rows)
        assert total == result.metrics.attempts

    def test_staleness_reduces_success(self):
        accurate = run_simulation(quick_config(workload=WorkloadSpec(rate_per_60tu=200, horizon=600)))
        stale = run_simulation(
            quick_config(staleness=8.0, workload=WorkloadSpec(rate_per_60tu=200, horizon=600))
        )
        assert stale.success_rate <= accurate.success_rate
        assert "admission_failed" in stale.metrics.failure_reasons

    def test_accurate_runs_never_fail_admission(self):
        """With atomic establishment and accurate observations, a computed
        plan always reserves successfully (the paper's base assumption)."""
        result = run_simulation(quick_config())
        assert "admission_failed" not in result.metrics.failure_reasons

    def test_diversity_compression_runs(self):
        result = run_simulation(quick_config(diversity_ratio=3.0))
        assert result.metrics.attempts > 0

    def test_contention_index_variants_run(self):
        for index in ("headroom", "log"):
            result = run_simulation(quick_config(contention_index=index))
            assert result.metrics.attempts > 0

    def test_latency_mode_runs(self):
        result = run_simulation(quick_config(latency=0.5))
        assert result.metrics.attempts > 0

    def test_keep_outcomes(self):
        config = quick_config(keep_outcomes=True)
        result = run_simulation(config)
        assert result.config.keep_outcomes


class TestPaperShape:
    """The headline qualitative claims of §5, at reduced scale."""

    def test_basic_beats_random_under_contention(self):
        spec = WorkloadSpec(rate_per_60tu=200, horizon=800)
        basic = run_simulation(SimulationConfig(algorithm="basic", seed=3, workload=spec))
        random_ = run_simulation(SimulationConfig(algorithm="random", seed=3, workload=spec))
        assert basic.success_rate > random_.success_rate

    def test_tradeoff_beats_basic_in_success_but_not_qos(self):
        spec = WorkloadSpec(rate_per_60tu=200, horizon=800)
        basic = run_simulation(SimulationConfig(algorithm="basic", seed=3, workload=spec))
        tradeoff = run_simulation(SimulationConfig(algorithm="tradeoff", seed=3, workload=spec))
        assert tradeoff.success_rate >= basic.success_rate
        assert tradeoff.avg_qos_level < basic.avg_qos_level

    def test_basic_and_random_stay_near_top_qos(self):
        spec = WorkloadSpec(rate_per_60tu=150, horizon=600)
        for algorithm in ("basic", "random"):
            result = run_simulation(SimulationConfig(algorithm=algorithm, seed=4, workload=spec))
            assert result.avg_qos_level > 2.8

    def test_fat_sessions_fare_worse_than_normal(self):
        result = run_simulation(
            SimulationConfig(
                algorithm="basic", seed=5, workload=WorkloadSpec(rate_per_60tu=220, horizon=800)
            )
        )
        rows = {name: sr for name, sr, _qos, _n in result.metrics.class_rows}
        assert rows["fat-short"] < rows["norm.-short"]
        assert rows["fat-long"] < rows["norm.-long"]

    def test_multiple_paths_selected(self):
        result = run_simulation(quick_config(workload=WorkloadSpec(rate_per_60tu=150, horizon=800)))
        assert len(result.paths.percentages("A")) >= 3
        assert len(result.paths.percentages("B")) >= 3


class TestSweeps:
    def test_sweep_over_workload_field(self):
        base = quick_config(workload=WorkloadSpec(rate_per_60tu=60, horizon=300))
        results = sweep(base, "rate_per_60tu", [60, 120], workload_field=True)
        assert len(results) == 2
        assert results[0].config.workload.rate_per_60tu == 60
        assert results[1].config.workload.rate_per_60tu == 120

    def test_sweep_over_config_field(self):
        base = quick_config(workload=WorkloadSpec(rate_per_60tu=100, horizon=300))
        results = sweep(base, "staleness", [0.0, 4.0])
        assert [r.config.staleness for r in results] == [0.0, 4.0]

    def test_rate_sweep_shape(self):
        base = quick_config(workload=WorkloadSpec(rate_per_60tu=60, horizon=300))
        table = rate_sweep(["basic", "random"], [60, 120], base=base)
        assert set(table) == {"basic", "random"}
        assert all(len(runs) == 2 for runs in table.values())


class TestMidRunInvariants:
    def test_accounting_holds_throughout_a_run(self):
        """Poll every broker during a contended run: reserved never
        exceeds capacity and availability is never negative."""
        from repro.des import Environment, RandomStreams
        from repro.core.planner import BasicPlanner
        from repro.runtime.session import ServiceSession
        from repro.sim.environment import GridEnvironment
        from repro.sim.workload import WorkloadGenerator, WorkloadSpec

        env = Environment()
        streams = RandomStreams(11)
        grid = GridEnvironment(env, streams)
        planner = BasicPlanner()
        spec = WorkloadSpec(rate_per_60tu=220, horizon=300)
        generator = WorkloadGenerator(spec, streams)
        violations = []

        def arrivals():
            for request in generator.generate():
                if request.arrival_time > env.now:
                    yield env.timeout(request.arrival_time - env.now)
                session = ServiceSession(
                    env, grid.coordinator, request.session_id, request.service,
                    grid.binding_for(request.service, request.domain),
                    planner, request.duration, demand_scale=request.demand_scale,
                )
                env.process(session.run())

        def watchdog():
            while env.peek() != float("inf"):
                for broker in grid.registry.brokers():
                    if broker.available < -1e-6:
                        violations.append((env.now, broker.resource_id, "negative"))
                    if broker.reserved > broker.capacity + 1e-6:
                        violations.append((env.now, broker.resource_id, "over"))
                yield env.timeout(7.0)

        env.process(arrivals())
        env.process(watchdog())
        env.run()
        assert violations == []
        grid.registry.assert_quiescent()
