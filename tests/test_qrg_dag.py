"""Structural tests for QRG construction over DAG services."""

import numpy as np
import pytest

from repro.core import build_qrg
from repro.core.qrg import QRGNode, assemble_qrg, price_component_edges, resolve_source_level
from repro.core.synthetic import synthetic_diamond_dag


@pytest.fixture
def diamond():
    return synthetic_diamond_dag(2, 2, rng=np.random.default_rng(0))


class TestFanInGroups:
    def test_groups_cover_all_combinations(self, diamond):
        service, binding, snapshot = diamond
        qrg = build_qrg(service, binding, snapshot)
        groups = [g for g in qrg.fanin_groups if g.input_node.component == "sink"]
        # 2 branches x 2 levels = 4 concatenations
        assert len(groups) == 4
        for group in groups:
            assert len(group.parts) == 2
            assert {part.component for part in group.parts} == {"br0", "br1"}
            # the input label is the concatenation of the part labels
            assert group.input_node.label == "|".join(p.label for p in group.parts)

    def test_fan_in_inputs_have_equivalence_edges_per_part(self, diamond):
        service, binding, snapshot = diamond
        qrg = build_qrg(service, binding, snapshot)
        for group in qrg.fanin_groups:
            incoming = {eq.src for eq in qrg.equiv_into(group.input_node)}
            assert set(group.parts) <= incoming

    def test_fan_out_outputs_feed_every_branch(self, diamond):
        service, binding, snapshot = diamond
        qrg = build_qrg(service, binding, snapshot)
        for level in service.component("fan").output_levels:
            node = QRGNode("fan", "out", level.label)
            downstream_components = {eq.dst.component for eq in qrg.equiv_from(node)}
            assert downstream_components == {"br0", "br1"}


class TestSplitConstruction:
    def test_price_plus_assemble_equals_build(self, diamond):
        """The distributed-pricing split must reproduce build_qrg exactly."""
        service, binding, snapshot = diamond
        whole = build_qrg(service, binding, snapshot)

        source_level = resolve_source_level(service)
        fragments = []
        for component in service.components:
            fragments.extend(price_component_edges(component, binding, snapshot))
        stitched = assemble_qrg(service, source_level, fragments, snapshot)

        def edge_set(qrg):
            return {
                (e.src, e.dst, round(e.weight, 12), e.bottleneck_resource)
                for e in qrg.intra_edges
            }

        assert edge_set(whole) == edge_set(stitched)
        assert set(whole.nodes) == set(stitched.nodes)
        assert {(e.src, e.dst) for e in whole.equiv_edges} == {
            (e.src, e.dst) for e in stitched.equiv_edges
        }

    def test_assemble_drops_foreign_source_inputs(self, small_service, small_binding, ample_snapshot):
        """Edges priced for unselected source levels are filtered out."""
        source_level = resolve_source_level(small_service)
        fragments = []
        for component in small_service.components:
            fragments.extend(
                price_component_edges(component, small_binding, ample_snapshot)
            )
        qrg = assemble_qrg(small_service, source_level, fragments, ample_snapshot)
        source_edges = [e for e in qrg.intra_edges if e.src.component == "c1"]
        assert all(e.src == qrg.source_node for e in source_edges)
