"""Tests for DependencyGraph and DistributedService validation."""

import pytest

from repro.core import (
    DependencyGraph,
    DistributedService,
    ModelError,
    QoSLevel,
    QoSRanking,
    QoSVector,
    ServiceComponent,
    TabularTranslation,
    concat_levels,
)


def lv(label: str, **params) -> QoSLevel:
    return QoSLevel(label, QoSVector(params))


class TestDependencyGraph:
    def test_chain_helper(self):
        graph = DependencyGraph.chain(["a", "b", "c"])
        assert graph.edges == (("a", "b"), ("b", "c"))
        assert graph.source == "a" and graph.sink == "c"
        assert graph.is_chain()
        assert graph.topological_order() == ("a", "b", "c")

    def test_empty_chain_rejected(self):
        with pytest.raises(ModelError):
            DependencyGraph.chain([])

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ModelError):
            DependencyGraph(["a", "a"], [])

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(ModelError):
            DependencyGraph(["a"], [("a", "b")])

    def test_self_loop_rejected(self):
        with pytest.raises(ModelError):
            DependencyGraph(["a"], [("a", "a")])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ModelError):
            DependencyGraph(["a", "b"], [("a", "b"), ("a", "b")])

    def test_cycle_rejected(self):
        with pytest.raises(ModelError, match="cycle"):
            DependencyGraph(["a", "b", "c"], [("a", "b"), ("b", "c"), ("c", "a")])

    def test_single_source_and_sink_required(self):
        # two sources
        with pytest.raises(ModelError, match="source"):
            DependencyGraph(["a", "b", "c"], [("a", "c"), ("b", "c")])

    def test_fan_in_fan_out_queries(self):
        graph = DependencyGraph(
            ["s", "f", "x", "y", "t"],
            [("s", "f"), ("f", "x"), ("f", "y"), ("x", "t"), ("y", "t")],
        )
        assert graph.is_fan_out("f")
        assert graph.is_fan_in("t")
        assert not graph.is_chain()
        assert graph.upstreams("t") == ("x", "y")
        assert graph.downstreams("f") == ("x", "y")


def make_chain_service(client_inputs_match: bool = True) -> DistributedService:
    c1 = ServiceComponent(
        "c1",
        (lv("Qa", q=2),),
        (lv("Qb", q=1),),
        TabularTranslation({("Qa", "Qb"): {"cpu": 1}}),
    )
    input_vector = {"q": 1} if client_inputs_match else {"q": 99}
    c2 = ServiceComponent(
        "c2",
        (lv("Qc", **input_vector),),
        (lv("Qd", e=1),),
        TabularTranslation({("Qc", "Qd"): {"net": 1}}),
    )
    return DistributedService(
        "svc", [c1, c2], DependencyGraph.chain(["c1", "c2"]), QoSRanking(["Qd"])
    )


class TestDistributedService:
    def test_valid_service_builds(self):
        service = make_chain_service()
        assert service.source_component.name == "c1"
        assert service.sink_component.name == "c2"
        assert [level.label for level in service.end_to_end_levels()] == ["Qd"]

    def test_component_lookup(self):
        service = make_chain_service()
        assert service.component("c1").name == "c1"
        with pytest.raises(ModelError):
            service.component("zz")

    def test_mismatched_equivalence_rejected(self):
        with pytest.raises(ModelError, match="equivalent"):
            make_chain_service(client_inputs_match=False)

    def test_ranking_must_cover_sink_levels(self):
        c1 = ServiceComponent(
            "c1", (lv("Qa", q=1),), (lv("Qb", e=2), lv("Qc", e=1)),
            TabularTranslation({("Qa", "Qb"): {"cpu": 1}, ("Qa", "Qc"): {"cpu": 1}}),
        )
        with pytest.raises(ModelError, match="misses"):
            DistributedService("s", [c1], DependencyGraph.chain(["c1"]), QoSRanking(["Qb"]))
        with pytest.raises(ModelError, match="unknown"):
            DistributedService(
                "s", [c1], DependencyGraph.chain(["c1"]), QoSRanking(["Qb", "Qc", "Qz"])
            )

    def test_component_set_must_match_graph(self):
        c1 = ServiceComponent(
            "c1", (lv("Qa", q=1),), (lv("Qb", e=1),),
            TabularTranslation({("Qa", "Qb"): {"cpu": 1}}),
        )
        with pytest.raises(ModelError, match="mismatch"):
            DistributedService("s", [c1], DependencyGraph.chain(["c1", "c2"]), QoSRanking(["Qb"]))

    def test_duplicate_components_rejected(self):
        c1 = ServiceComponent(
            "c1", (lv("Qa", q=1),), (lv("Qb", e=1),),
            TabularTranslation({("Qa", "Qb"): {"cpu": 1}}),
        )
        with pytest.raises(ModelError, match="duplicate"):
            DistributedService("s", [c1, c1], DependencyGraph.chain(["c1"]), QoSRanking(["Qb"]))


class TestFanInCombinations:
    def build_diamond(self):
        src = ServiceComponent(
            "src", (lv("Qs", q=1),), (lv("Qo", q=0),),
            TabularTranslation({("Qs", "Qo"): {"r": 1}}),
        )
        x = ServiceComponent(
            "x", (lv("Qxi", q=0),), (lv("Qx1", a=2), lv("Qx2", a=1)),
            TabularTranslation({("Qxi", "Qx1"): {"r": 1}, ("Qxi", "Qx2"): {"r": 1}}),
        )
        y = ServiceComponent(
            "y", (lv("Qyi", q=0),), (lv("Qy1", b=2), lv("Qy2", b=1)),
            TabularTranslation({("Qyi", "Qy1"): {"r": 1}, ("Qyi", "Qy2"): {"r": 1}}),
        )
        fanin_inputs = tuple(
            concat_levels([xl, yl])
            for xl in x.output_levels
            for yl in y.output_levels
        )
        sink = ServiceComponent(
            "t",
            fanin_inputs,
            (lv("Qt", e=1),),
            TabularTranslation({(li.label, "Qt"): {"r": 1} for li in fanin_inputs}),
        )
        graph = DependencyGraph(
            ["src", "x", "y", "t"],
            [("src", "x"), ("src", "y"), ("x", "t"), ("y", "t")],
        )
        return DistributedService("diamond", [src, x, y, sink], graph, QoSRanking(["Qt"]))

    def test_fan_in_combinations_enumerated(self):
        service = self.build_diamond()
        combos = list(service.upstream_output_combinations("t"))
        assert len(combos) == 4  # 2 x-levels times 2 y-levels
        parts, combined = combos[0]
        assert [p[0] for p in parts] == ["x", "y"]
        assert combined.label in {"Qx1|Qy1", "Qx1|Qy2", "Qx2|Qy1", "Qx2|Qy2"}

    def test_equivalent_input_levels_found(self):
        service = self.build_diamond()
        for _parts, combined in service.upstream_output_combinations("t"):
            matches = service.equivalent_input_levels("t", combined)
            assert len(matches) == 1
            assert matches[0].vector == combined.vector
