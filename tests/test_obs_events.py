"""The causal reservation event log: EventLog, emission sites, schema v2."""

import json

import pytest

from repro.obs import (
    EVENT_KINDS,
    EventLog,
    ObservabilityConfig,
    ObservationSession,
    ReservationEvent,
    active_event_log,
    event_logging,
)
from repro.obs import events as events_mod
from repro.obs.export import TRACE_SCHEMA_VERSION


class TestEventLog:
    def test_disabled_by_default(self):
        assert active_event_log() is None
        # the module-level emit helper must be a usable no-op
        events_mod.emit("broker.grant", resource="cpu:H1", requested=5.0)
        assert active_event_log() is None

    def test_emit_records_in_causal_order(self):
        log = EventLog()
        log.emit("session.planned", session="s1", psi=0.5)
        log.emit("broker.grant", session="s1", resource="cpu:H1", time=3.0)
        assert len(log) == 2
        first, second = list(log)
        assert (first.kind, first.seq) == ("session.planned", 0)
        assert (second.kind, second.seq) == ("broker.grant", 1)
        assert second.time == 3.0 and first.time is None
        assert first.attributes == {"psi": 0.5}
        assert second.wall >= first.wall

    def test_unknown_kind_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError, match="unknown event kind"):
            log.emit("session.exploded")
        # module-level emit validates too (when a log is installed)
        with event_logging(log):
            with pytest.raises(ValueError):
                events_mod.emit("not.a.kind")

    def test_capacity_drops_newest_and_counts(self):
        log = EventLog(capacity=2)
        for n in range(5):
            log.emit("broker.probe", resource=f"r{n}")
        # causal prefix kept, plus exactly one truncation marker
        assert len(log) == 3
        assert log.dropped == 3
        events = list(log)
        assert [e.resource for e in events[:2]] == ["r0", "r1"]
        marker = events[2]
        assert marker.kind == "log.truncated"
        assert marker.attributes == {"capacity": 2, "first_dropped_seq": 2}
        assert marker.seq > marker.attributes["first_dropped_seq"]
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_subscribers_see_past_capacity(self):
        log = EventLog(capacity=2)
        seen = []
        callback = log.subscribe(lambda e: seen.append((e.kind, e.resource)))
        log.subscribe(callback)  # idempotent
        assert log.subscriber_count == 1
        for n in range(4):
            log.emit("broker.probe", resource=f"r{n}")
        # storage truncates, but the stream delivers every event (and the
        # single marker) to subscribers
        kinds = [k for k, _ in seen]
        assert kinds.count("log.truncated") == 1
        assert [r for k, r in seen if k == "broker.probe"] == ["r0", "r1", "r2", "r3"]
        log.unsubscribe(callback)
        log.unsubscribe(callback)  # unknown callback is a no-op
        assert log.subscriber_count == 0
        with pytest.raises(TypeError):
            log.subscribe("not callable")

    def test_clear_resets_truncation(self):
        log = EventLog(capacity=1)
        for _ in range(3):
            log.emit("broker.probe", resource="r")
        assert log.count("log.truncated") == 1
        log.clear()
        assert len(log) == 0 and log.dropped == 0
        log.emit("broker.probe", resource="r")
        assert log.count("log.truncated") == 0

    def test_install_over_existing_log_raises(self):
        first, second = EventLog(), EventLog()
        with event_logging(first):
            with pytest.raises(RuntimeError, match="already installed"):
                events_mod.install(second)
            # force and reinstalling the same log are both allowed
            events_mod.install(first)  # idempotent, no raise
            events_mod.install(second, force=True)
            assert active_event_log() is second
            events_mod.install(first, force=True)
        assert active_event_log() is None

    def test_query_helpers(self):
        log = EventLog()
        log.emit("broker.grant", session="s1", resource="cpu:H1")
        log.emit("broker.grant", session="s2", resource="cpu:H2")
        log.emit("broker.release", session="s1", resource="cpu:H1")
        assert log.count("broker.grant") == 2
        assert log.kinds() == ["broker.grant", "broker.release"]
        assert log.kind_counts() == {"broker.grant": 2, "broker.release": 1}
        assert [e.kind for e in log.for_session("s1")] == [
            "broker.grant",
            "broker.release",
        ]
        assert len(log.for_resource("cpu:H2")) == 1

    def test_event_dict_round_trip(self):
        log = EventLog()
        log.emit(
            "session.rejected",
            session="s9",
            resource="net:H1-H2",
            time=12.5,
            reason="admission_failed",
            requested={"net:H1-H2": 4.0},
        )
        (event,) = log
        rebuilt = ReservationEvent.from_dict(json.loads(json.dumps(event.to_dict())))
        assert rebuilt == event

    def test_install_and_restore(self):
        log = EventLog()
        with event_logging(log):
            assert active_event_log() is log
            events_mod.emit("broker.probe", resource="cpu:H1")
        assert active_event_log() is None
        assert len(log) == 1


class TestEmissionSites:
    """Each instrumented layer emits its lifecycle events."""

    def test_broker_grant_reject_release(self):
        from repro.brokers import LocalResourceBroker
        from repro.core.errors import AdmissionError

        log = EventLog()
        with event_logging(log):
            broker = LocalResourceBroker("H1", "cpu", 100.0)
            broker.observe()
            reservation = broker.reserve(40.0, "s1")
            with pytest.raises(AdmissionError):
                broker.reserve(100.0, "s2")
            broker.release(reservation)
        kinds = [e.kind for e in log]
        assert kinds == [
            "broker.probe",
            "broker.grant",
            "broker.reject",
            "broker.release",
        ]
        probe, grant, reject, release = list(log)
        assert probe.attributes["available"] == 100.0
        assert grant.session == "s1" and grant.resource == "cpu:H1"
        assert grant.attributes["requested"] == 40.0
        assert grant.attributes["available"] == 100.0  # pre-grant availability
        assert grant.attributes["utilization"] == pytest.approx(0.4)
        assert reject.session == "s2"
        assert reject.attributes["requested"] == 100.0
        assert reject.attributes["available"] == pytest.approx(60.0)
        assert release.session == "s1"
        assert release.attributes["utilization"] == 0.0

    def test_path_broker_reject_names_bottleneck(self):
        from repro.brokers import LinkBandwidthBroker, PathBroker
        from repro.core.errors import AdmissionError

        links = [
            LinkBandwidthBroker("L1", "H1", "R1", 100.0),
            LinkBandwidthBroker("L2", "R1", "H2", 30.0),
        ]
        log = EventLog()
        with event_logging(log):
            path = PathBroker("net:H1-H2", links)
            with pytest.raises(AdmissionError):
                path.reserve(50.0, "s1")
        rejects = [e for e in log if e.kind == "broker.reject" and e.resource == "net:H1-H2"]
        assert len(rejects) == 1
        assert rejects[0].attributes["bottleneck_link"] == "L2"

    def test_tradeoff_backoff_event(self, small_service, small_binding):
        # a falling-availability bottleneck (alpha < 1) forces the §4.3.1
        # backoff, which must leave a causal record
        from repro.core import AvailabilitySnapshot, ResourceObservation, TradeoffPlanner, build_qrg

        snapshot = AvailabilitySnapshot(
            {
                "cpu:H1": ResourceObservation(available=100.0, alpha=1.0),
                "net:L1": ResourceObservation(available=100.0, alpha=0.5),
            }
        )
        log = EventLog()
        with event_logging(log):
            qrg = build_qrg(small_service, small_binding, snapshot)
            plan = TradeoffPlanner().plan(qrg)
        assert plan is not None
        (backoff,) = [e for e in log if e.kind == "planner.tradeoff_backoff"]
        assert backoff.attributes["from_level"] == "Qf"
        assert backoff.attributes["to_level"] == plan.end_to_end_label == "Qg"
        assert backoff.attributes["alpha"] == pytest.approx(0.5)
        assert backoff.attributes["psi_chosen"] <= backoff.attributes["psi_best"]

    def test_session_events_from_simulation(self, sim_trace_document):
        document = sim_trace_document
        counts = document["event_counts"]
        assert counts["session.planned"] >= counts["session.admitted"]
        assert counts["session.admitted"] > 0
        # every admitted-below-top-level session has its degradation record
        degraded = [
            e
            for e in document["events"]
            if e["kind"] == "session.degraded"
        ]
        for event in degraded:
            assert event["attributes"]["rank"] > 0
        planned = next(
            e for e in document["events"] if e["kind"] == "session.planned"
        )
        attrs = planned["attributes"]
        assert set(attrs["requested"]) == set(attrs["available"])
        assert 0.0 < attrs["psi"] <= 1.0
        assert attrs["bottleneck"] in attrs["requested"]
        # grants and releases balance: the run ends quiescent
        assert counts["broker.grant"] == counts["broker.release"]

    def test_schema_document_shape(self, sim_trace_document):
        document = sim_trace_document
        assert document["schema_version"] == TRACE_SCHEMA_VERSION == 4
        assert set(document["event_counts"]) <= EVENT_KINDS
        for event in document["events"][:50]:
            assert event["kind"] in EVENT_KINDS
            assert isinstance(event["seq"], int)


@pytest.fixture(scope="module")
def sim_trace_document(tmp_path_factory):
    """One small traced tradeoff run's exported v2 document."""
    from repro.sim import SimulationConfig, run_simulation
    from repro.sim.workload import WorkloadSpec

    out = tmp_path_factory.mktemp("events")
    config = SimulationConfig(
        algorithm="tradeoff",
        seed=7,
        workload=WorkloadSpec(rate_per_60tu=150.0, horizon=150.0),
        observability=ObservabilityConfig(trace_path=str(out / "trace.json")),
    )
    run_simulation(config)
    return json.loads((out / "trace.json").read_text())


class TestSessionIntegration:
    def test_session_installs_event_log(self):
        with ObservationSession() as session:
            assert active_event_log() is session.event_log
            events_mod.emit("broker.probe", resource="cpu:H1")
        assert active_event_log() is None
        assert session.event_log.count("broker.probe") == 1

    def test_events_disabled(self):
        config = ObservabilityConfig(events=False)
        session = ObservationSession(config)
        assert session.event_log is None
        with session:
            assert active_event_log() is None

    def test_event_capacity_flows_through(self):
        config = ObservabilityConfig(event_capacity=3)
        with ObservationSession(config) as session:
            for _ in range(5):
                events_mod.emit("broker.probe", resource="r")
        # 3 stored + the single log.truncated marker
        assert len(session.event_log) == 4
        assert session.event_log.dropped == 2
        assert session.event_log.count("log.truncated") == 1
        document = session.to_dict()
        assert document["events_dropped"] == 2

    def test_summary_carries_event_counts(self):
        with ObservationSession() as session:
            events_mod.emit("broker.grant", session="s1", resource="cpu:H1")
            events_mod.emit("broker.grant", session="s2", resource="cpu:H1")
        summary = session.summarize()
        assert summary.event_counts == {"broker.grant": 2}
        assert summary.event_count("broker.grant") == 2
        assert summary.event_count("broker.reject") == 0

    def test_summary_report_lists_events(self):
        with ObservationSession() as session:
            events_mod.emit("session.admitted", session="s1")
        report = session.summary()
        assert "reservation events:" in report
        assert "session.admitted" in report
