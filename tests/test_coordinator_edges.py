"""Edge cases of the centralised coordinator and session plumbing."""

import pytest

from repro.brokers import BrokerRegistry, LinkBandwidthBroker, LocalResourceBroker, PathBroker
from repro.core import BasicPlanner, headroom_contention_index
from repro.core.errors import BrokerError
from repro.des import Environment
from repro.runtime import ModelStore, QoSProxy, ReservationCoordinator, ServiceSession
from repro.runtime.messages import PlanSegment


def build_rig(small_service, env=None):
    registry = BrokerRegistry()
    clock = (lambda: env.now) if env is not None else None
    cpu = LocalResourceBroker("H1", "cpu", 100.0, clock=clock)
    link = LinkBandwidthBroker("L1", "H1", "H2", 100.0, clock=clock)
    path = PathBroker("net:L1", [link], clock=clock)
    for broker in (cpu, link, path):
        registry.register(broker)
    proxy_h1 = QoSProxy("H1", registry)
    proxy_h1.own("cpu:H1")
    proxy_h2 = QoSProxy("H2", registry)
    proxy_h2.own("net:L1")
    store = ModelStore()
    store.register(small_service)
    coordinator = ReservationCoordinator(registry, store, {"H1": proxy_h1, "H2": proxy_h2})
    return registry, coordinator, proxy_h1, proxy_h2, cpu, link


class TestProxySegments:
    def test_apply_segment_rejects_unowned_resources(self, small_service):
        _registry, _coordinator, proxy_h1, *_ = build_rig(small_service)
        segment = PlanSegment("s1", "H1", {"net:L1": 5.0})
        with pytest.raises(BrokerError, match="unowned"):
            proxy_h1.apply_segment(segment)

    def test_segment_rollback_on_partial_failure(self, small_service):
        registry, _coordinator, proxy_h1, *_ = build_rig(small_service)
        proxy_h1.own("net:L1")  # now owns both, for a 2-resource segment
        registry.broker("net:L1").reserve(96.0, "hog")
        segment = PlanSegment("s1", "H1", {"cpu:H1": 10.0, "net:L1": 50.0})
        with pytest.raises(Exception):
            proxy_h1.apply_segment(segment)
        assert registry.broker("cpu:H1").available == 100.0
        assert proxy_h1.held_for("s1") == ()


class TestCoordinatorConfig:
    def test_custom_contention_index_threads_through(self, small_service, small_binding):
        _registry, coordinator, *_ = build_rig(small_service)
        result = coordinator.establish(
            "s1", "small", small_binding, BasicPlanner(),
            contention_index=headroom_contention_index,
        )
        assert result.success
        # psi under the headroom definition: 20/(100-20) = 0.25
        assert result.plan.psi == pytest.approx(0.25)
        coordinator.teardown("s1")

    def test_establish_process_negative_latency_rejected(self, small_service, small_binding):
        env = Environment()
        _registry, coordinator, *_ = build_rig(small_service, env)
        generator = coordinator.establish_process(
            env, -1.0, "s1", "small", small_binding, BasicPlanner()
        )
        with pytest.raises(ValueError):
            next(generator)

    def test_establish_process_freezes_observation_time(self, small_service, small_binding):
        """Observations under latency are as-of the request time, so a
        resource consumed during the round trip causes a phase-3 race."""
        env = Environment()
        registry, coordinator, *_rest, cpu, link = build_rig(small_service, env)

        def racer(env):
            yield env.timeout(1.0)
            link.reserve(95.0, "racer")  # consumes net during the RTT

        def session(env):
            result = yield from coordinator.establish_process(
                env, 2.0, "s1", "small", small_binding, BasicPlanner()
            )
            return result

        env.process(racer(env))
        process = env.process(session(env))
        env.run()
        result = process.value
        assert not result.success
        assert result.reason == "admission_failed"
        assert cpu.available == 100.0  # rolled back

    def test_teardown_of_unknown_session_is_zero(self, small_service):
        _registry, coordinator, *_ = build_rig(small_service)
        assert coordinator.teardown("never-existed") == 0
