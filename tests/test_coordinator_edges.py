"""Edge cases of the centralised coordinator and session plumbing."""

import pytest

from repro.brokers import BrokerRegistry, LinkBandwidthBroker, LocalResourceBroker, PathBroker
from repro.core import BasicPlanner, headroom_contention_index
from repro.core.errors import BrokerError
from repro.core.plan import ComponentAssignment, ReservationPlan
from repro.core.resources import ResourceVector
from repro.des import Environment
from repro.runtime import ModelStore, QoSProxy, ReservationCoordinator, ServiceSession
from repro.runtime.messages import PlanSegment


def build_rig(small_service, env=None):
    registry = BrokerRegistry()
    clock = (lambda: env.now) if env is not None else None
    cpu = LocalResourceBroker("H1", "cpu", 100.0, clock=clock)
    link = LinkBandwidthBroker("L1", "H1", "H2", 100.0, clock=clock)
    path = PathBroker("net:L1", [link], clock=clock)
    for broker in (cpu, link, path):
        registry.register(broker)
    proxy_h1 = QoSProxy("H1", registry)
    proxy_h1.own("cpu:H1")
    proxy_h2 = QoSProxy("H2", registry)
    proxy_h2.own("net:L1")
    store = ModelStore()
    store.register(small_service)
    coordinator = ReservationCoordinator(registry, store, {"H1": proxy_h1, "H2": proxy_h2})
    return registry, coordinator, proxy_h1, proxy_h2, cpu, link


class TestProxySegments:
    def test_apply_segment_rejects_unowned_resources(self, small_service):
        _registry, _coordinator, proxy_h1, *_ = build_rig(small_service)
        segment = PlanSegment("s1", "H1", {"net:L1": 5.0})
        with pytest.raises(BrokerError, match="unowned"):
            proxy_h1.apply_segment(segment)

    def test_segment_rollback_on_partial_failure(self, small_service):
        registry, _coordinator, proxy_h1, *_ = build_rig(small_service)
        proxy_h1.own("net:L1")  # now owns both, for a 2-resource segment
        registry.broker("net:L1").reserve(96.0, "hog")
        segment = PlanSegment("s1", "H1", {"cpu:H1": 10.0, "net:L1": 50.0})
        with pytest.raises(Exception):
            proxy_h1.apply_segment(segment)
        assert registry.broker("cpu:H1").available == 100.0
        assert proxy_h1.held_for("s1") == ()


class TestCoordinatorConfig:
    def test_custom_contention_index_threads_through(self, small_service, small_binding):
        _registry, coordinator, *_ = build_rig(small_service)
        result = coordinator.establish(
            "s1", "small", small_binding, BasicPlanner(),
            contention_index=headroom_contention_index,
        )
        assert result.success
        # psi under the headroom definition: 20/(100-20) = 0.25
        assert result.plan.psi == pytest.approx(0.25)
        coordinator.teardown("s1")

    def test_establish_process_negative_latency_rejected(self, small_service, small_binding):
        env = Environment()
        _registry, coordinator, *_ = build_rig(small_service, env)
        generator = coordinator.establish_process(
            env, -1.0, "s1", "small", small_binding, BasicPlanner()
        )
        with pytest.raises(ValueError):
            next(generator)

    def test_establish_process_freezes_observation_time(self, small_service, small_binding):
        """Observations under latency are as-of the request time, so a
        resource consumed during the round trip causes a phase-3 race."""
        env = Environment()
        registry, coordinator, *_rest, cpu, link = build_rig(small_service, env)

        def racer(env):
            yield env.timeout(1.0)
            link.reserve(95.0, "racer")  # consumes net during the RTT

        def session(env):
            result = yield from coordinator.establish_process(
                env, 2.0, "s1", "small", small_binding, BasicPlanner()
            )
            return result

        env.process(racer(env))
        process = env.process(session(env))
        env.run()
        result = process.value
        assert not result.success
        assert result.reason == "admission_failed"
        assert cpu.available == 100.0  # rolled back

    def test_teardown_of_unknown_session_is_zero(self, small_service):
        _registry, coordinator, *_ = build_rig(small_service)
        assert coordinator.teardown("never-existed") == 0


class TestTeardownIdempotency:
    """Teardown must be safe to repeat: a second (or misdirected)
    teardown returns 0 and leaves no partial broker state behind."""

    def test_double_teardown_returns_zero(self, small_service, small_binding):
        registry, coordinator, *_ = build_rig(small_service)
        result = coordinator.establish("s1", "small", small_binding, BasicPlanner())
        assert result.success
        first = coordinator.teardown("s1")
        assert first > 0
        assert coordinator.teardown("s1") == 0
        registry.assert_quiescent()

    def test_unknown_session_teardown_leaves_live_sessions_intact(
        self, small_service, small_binding
    ):
        registry, coordinator, proxy_h1, proxy_h2, cpu, _link = build_rig(small_service)
        coordinator.establish("s1", "small", small_binding, BasicPlanner())
        held_before = (proxy_h1.held_for("s1"), proxy_h2.held_for("s1"))
        available_before = cpu.available
        assert coordinator.teardown("phantom") == 0
        assert (proxy_h1.held_for("s1"), proxy_h2.held_for("s1")) == held_before
        assert cpu.available == available_before
        coordinator.teardown("s1")
        registry.assert_quiescent()

    def test_release_session_tolerates_an_already_freed_reservation(
        self, small_service, small_binding
    ):
        """A broker-side release that races teardown (e.g. a reaped
        orphan) must not break the rest of the session's cleanup."""
        registry, coordinator, proxy_h1, *_ = build_rig(small_service)
        coordinator.establish("s1", "small", small_binding, BasicPlanner())
        victim = proxy_h1.held_for("s1")[0]
        registry.broker(victim.resource_id).release(victim)  # out-of-band free
        coordinator.teardown("s1")  # must not raise on the double release
        registry.assert_quiescent()
        assert coordinator.teardown("s1") == 0


class TestEstablishRollback:
    """Regression: when a *later* proxy's segment is rejected in phase 3,
    every segment already applied by earlier proxies must be released and
    the brokers' availability fully restored (paper §4.2 atomicity)."""

    def test_partial_failure_releases_earlier_proxies(self, small_service, small_binding):
        registry = BrokerRegistry()
        cpu1 = LocalResourceBroker("H1", "cpu", 100.0)
        cpu2 = LocalResourceBroker("H2", "cpu", 100.0)
        link = LinkBandwidthBroker("L1", "H1", "H2", 100.0)
        path = PathBroker("net:L1", [link])
        for broker in (cpu1, cpu2, link, path):
            registry.register(broker)
        # Segments dispatch in sorted-host order, so the over-demanded
        # network resource (owned by "H3") is applied *after* both CPU
        # segments have already been reserved.
        proxies = {host: QoSProxy(host, registry) for host in ("H1", "H2", "H3")}
        proxies["H1"].own("cpu:H1")
        proxies["H2"].own("cpu:H2")
        proxies["H3"].own("net:L1")
        store = ModelStore()
        store.register(small_service)
        coordinator = ReservationCoordinator(registry, store, proxies)

        doomed_plan = ReservationPlan(
            service=small_service.name,
            assignments=(
                ComponentAssignment(
                    component="c1", qin_label="Qa", qout_label="Qb",
                    requirement=ResourceVector({"cpu": 10.0}),
                    bound=ResourceVector({"cpu:H1": 10.0, "cpu:H2": 10.0}),
                    weight=0.1, bottleneck_resource="cpu:H1", alpha=0.0,
                ),
                ComponentAssignment(
                    component="c2", qin_label="Qb", qout_label="Qf",
                    requirement=ResourceVector({"net": 150.0}),
                    bound=ResourceVector({"net:L1": 150.0}),  # > capacity 100
                    weight=1.5, bottleneck_resource="net:L1", alpha=0.0,
                ),
            ),
            end_to_end_label="Qf", end_to_end_rank=0, numeric_level=1,
            psi=1.5, bottleneck_resource="net:L1", bottleneck_alpha=0.0,
        )

        class StubPlanner:
            name = "stub"

            def plan(self, qrg):
                return doomed_plan

        before = {rid: registry.broker(rid).available for rid in registry.resource_ids()}
        result = coordinator.establish("s1", "small", small_binding, StubPlanner())

        assert not result.success
        assert result.reason == "admission_failed"
        assert result.failed_resource == "net:L1"
        after = {rid: registry.broker(rid).available for rid in registry.resource_ids()}
        assert after == before, "rollback must restore every broker's availability"
        for proxy in proxies.values():
            assert proxy.held_for("s1") == ()
