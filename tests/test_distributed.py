"""Tests for the distributed model-store coordinator (paper §3)."""

import pytest

from repro.brokers import BrokerRegistry, LinkBandwidthBroker, LocalResourceBroker, PathBroker
from repro.core import BasicPlanner, TradeoffPlanner
from repro.core.errors import ModelError
from repro.runtime import (
    ComponentHost,
    DistributedCoordinator,
    FragmentRequest,
    ModelStore,
    QoSProxy,
    ReservationCoordinator,
)


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def distributed_rig(small_service, small_binding):
    registry = BrokerRegistry()
    clock = _Clock()
    cpu = LocalResourceBroker("H1", "cpu", 100.0, clock=clock)
    link = LinkBandwidthBroker("L1", "H1", "H2", 100.0, clock=clock)
    path = PathBroker("net:L1", [link], clock=clock)
    registry.clock = clock  # exposed for tests that advance time
    for broker in (cpu, link, path):
        registry.register(broker)
    host1 = ComponentHost("H1", registry)
    host1.store_component(small_service.component("c1"))
    host2 = ComponentHost("H2", registry)
    host2.store_component(small_service.component("c2"))
    structure = ModelStore()
    structure.register(small_service)
    coordinator = DistributedCoordinator(registry, structure, {"H1": host1, "H2": host2})
    return registry, coordinator, host1, host2, cpu, link


class TestComponentHost:
    def test_stores_components(self, distributed_rig, small_service):
        _registry, _coordinator, host1, host2, *_ = distributed_rig
        assert host1.stored_components() == ("c1",)
        with pytest.raises(ModelError):
            host1.store_component(small_service.component("c1"))

    def test_fragment_prices_local_edges(self, distributed_rig, small_binding):
        _registry, _coordinator, host1, _host2, *_ = distributed_rig
        fragment = host1.price_fragment(
            FragmentRequest("s1", "c1"), small_binding
        )
        assert fragment.component == "c1"
        assert len(fragment.edges) == 2  # Qa->Qb, Qa->Qc
        assert set(fragment.observations) == {"cpu:H1"}

    def test_fragment_scaling(self, distributed_rig, small_binding):
        _registry, _coordinator, host1, *_ = distributed_rig
        fragment = host1.price_fragment(
            FragmentRequest("s1", "c1", demand_scale=2.0), small_binding
        )
        bounds = {edge.dst.label: edge.bound["cpu:H1"] for edge in fragment.edges}
        assert bounds == {"Qb": 20.0, "Qc": 10.0}

    def test_unknown_component_rejected(self, distributed_rig, small_binding):
        _registry, _coordinator, host1, *_ = distributed_rig
        with pytest.raises(ModelError):
            host1.price_fragment(FragmentRequest("s1", "ghost"), small_binding)


class TestDistributedCoordinator:
    def test_establishes_and_reserves(self, distributed_rig, small_binding):
        registry, coordinator, _h1, _h2, cpu, link = distributed_rig
        result = coordinator.establish("s1", "small", small_binding, BasicPlanner())
        assert result.success
        assert cpu.available == 90.0
        assert link.available == 80.0
        assert coordinator.teardown("s1") == 2
        registry.assert_quiescent()

    def test_matches_centralised_plans(self, small_service, small_binding, distributed_rig):
        """Both coordination styles must compute the same plan from the
        same availability -- the paper treats them as equivalent."""
        registry, distributed, h1, h2, cpu, link = distributed_rig
        # centralised rig on the same registry
        central_h1 = QoSProxy("H1", registry)
        central_h1.own("cpu:H1")
        central_h2 = QoSProxy("H2", registry)
        central_h2.own("net:L1")
        store = ModelStore()
        store.register(small_service)
        central = ReservationCoordinator(
            registry, store, {"H1": central_h1, "H2": central_h2}
        )
        for planner in (BasicPlanner(), TradeoffPlanner()):
            for scale in (1.0, 2.0):
                distributed_result = distributed.establish(
                    "d", "small", small_binding, planner, demand_scale=scale
                )
                distributed.teardown("d")
                central_result = central.establish(
                    "c", "small", small_binding, planner, demand_scale=scale
                )
                central.teardown("c")
                assert distributed_result.success == central_result.success
                assert (
                    distributed_result.plan.signature_string()
                    == central_result.plan.signature_string()
                )
                assert distributed_result.plan.psi == pytest.approx(central_result.plan.psi)
        registry.assert_quiescent()

    def test_no_feasible_plan(self, distributed_rig, small_binding):
        _registry, coordinator, _h1, _h2, cpu, _link = distributed_rig
        cpu.reserve(99.0, "hog")
        result = coordinator.establish("s1", "small", small_binding, BasicPlanner())
        assert not result.success
        assert result.reason == "no_feasible_plan"

    def test_stale_observation_admission_failure(self, distributed_rig, small_binding):
        registry, coordinator, _h1, _h2, cpu, link = distributed_rig
        registry.clock.now = 5.0
        link.reserve(95.0, "hog")  # true availability drops to 5 at t=5

        # observe as of "before the hog" -> plan Qf -> phase 3 fails
        result = coordinator.establish(
            "s1", "small", small_binding, BasicPlanner(),
            observed_at=lambda rid: 0.0 if rid == "net:L1" else None,
        )
        assert not result.success
        assert result.reason == "admission_failed"
        assert result.failed_resource == "net:L1"
        assert cpu.available == 100.0  # rolled back

    def test_missing_component_host(self, distributed_rig, small_binding, small_service):
        registry, _coordinator, host1, _h2, *_ = distributed_rig
        structure = ModelStore()
        structure.register(small_service)
        partial = DistributedCoordinator(registry, structure, {"H1": host1})
        with pytest.raises(ModelError, match="stores component"):
            partial.establish("s1", "small", small_binding, BasicPlanner())
