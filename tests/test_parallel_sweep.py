"""Parallel sweep execution: byte-identical results, isolated workers.

The contract under test: a :class:`ParallelSweepRunner` batch produces
exactly the metrics a :class:`SerialSweepRunner` batch does (runs are
pure functions of their configs), results crossing the process boundary
are picklable (live observations are detached into summaries inside the
worker), and at most one :class:`ObservationSession` may be live per
process.
"""

import pathlib
import pickle

import pytest

from repro.obs import (
    ObservabilityConfig,
    ObservabilityError,
    ObservationSession,
    active_observation_session,
    reset_worker_observability,
)
from repro.sim.experiment import (
    ALGORITHMS,
    WORKERS_ENV,
    ParallelSweepRunner,
    SerialSweepRunner,
    SimulationConfig,
    default_sweep_runner,
    derive_run_seed,
    parallel_sweeps,
    rate_sweep,
    run_configs,
    set_default_sweep_runner,
    sweep,
)
from repro.sim.workload import WorkloadSpec

BASE = SimulationConfig(workload=WorkloadSpec(horizon=250.0))
RATES = [60.0, 150.0]


#: Forces a real process pool even on a 1-CPU box: the byte-identity
#: contract across the process boundary is what these tests pin.
FORCED_POOL = dict(max_workers=2, clamp_to_cpus=False)


class TestDeterminism:
    def test_parallel_rate_sweep_matches_serial_for_every_planner(self):
        serial = rate_sweep(ALGORITHMS, RATES, base=BASE, runner=SerialSweepRunner())
        parallel = rate_sweep(
            ALGORITHMS, RATES, base=BASE, runner=ParallelSweepRunner(**FORCED_POOL)
        )
        assert set(serial) == set(ALGORITHMS) == set(parallel)
        for algorithm in ALGORITHMS:
            assert len(parallel[algorithm]) == len(RATES)
            for s, p in zip(serial[algorithm], parallel[algorithm]):
                assert p.config == s.config
                assert p.metrics == s.metrics
                assert p.paths == s.paths

    def test_parallel_sweep_matches_serial(self):
        serial = sweep(
            BASE, "staleness", [0.0, 2.0], runner=SerialSweepRunner()
        )
        parallel = sweep(
            BASE, "staleness", [0.0, 2.0], runner=ParallelSweepRunner(**FORCED_POOL)
        )
        for s, p in zip(serial, parallel):
            assert p.metrics == s.metrics

    @pytest.mark.parametrize("chunk_size", [1, 5])
    def test_chunked_dispatch_matches_serial(self, chunk_size):
        serial = sweep(BASE, "staleness", [0.0, 1.0, 2.0], runner=SerialSweepRunner())
        parallel = sweep(
            BASE,
            "staleness",
            [0.0, 1.0, 2.0],
            runner=ParallelSweepRunner(chunk_size=chunk_size, **FORCED_POOL),
        )
        for s, p in zip(serial, parallel):
            assert p.metrics == s.metrics

    def test_single_worker_pool_runs_inline_and_detached(self):
        results = run_configs([BASE], runner=ParallelSweepRunner(max_workers=1))
        assert len(results) == 1
        assert results[0].observation is None

    def test_derived_seeds_are_deterministic_and_distinct(self):
        first = [derive_run_seed(7, i) for i in range(8)]
        second = [derive_run_seed(7, i) for i in range(8)]
        assert first == second
        assert len(set(first)) == len(first)
        assert first != [derive_run_seed(8, i) for i in range(8)]


class TestWorkerEdgeCases:
    """Worker-count edge cases: no pool when a pool cannot help."""

    def _poison_pool(self, monkeypatch):
        import repro.sim.experiment as experiment

        def boom(*args, **kwargs):  # pragma: no cover - should never run
            raise AssertionError("ProcessPoolExecutor constructed")

        monkeypatch.setattr(experiment, "ProcessPoolExecutor", boom)

    def test_workers_1_delegates_to_serial_without_a_pool(self, monkeypatch):
        self._poison_pool(monkeypatch)
        serial = run_configs([BASE, BASE.with_(seed=9)], runner=SerialSweepRunner())
        inline = run_configs(
            [BASE, BASE.with_(seed=9)], runner=ParallelSweepRunner(max_workers=1)
        )
        for s, p in zip(serial, inline):
            assert p.metrics == s.metrics
            # Inline execution still detaches observations, exactly like
            # a worker would, so the result shape is runner-independent.
            assert p.observation is None

    def test_single_config_never_constructs_a_pool(self, monkeypatch):
        self._poison_pool(monkeypatch)
        [result] = run_configs(
            [BASE], runner=ParallelSweepRunner(max_workers=8, clamp_to_cpus=False)
        )
        [serial] = run_configs([BASE], runner=SerialSweepRunner())
        assert result.metrics == serial.metrics

    def test_workers_clamp_to_batch_size(self):
        runner = ParallelSweepRunner(max_workers=100, clamp_to_cpus=False)
        assert runner.effective_workers(3) == 3
        assert runner.effective_workers(1) == 1
        assert runner.effective_workers(0) == 0

    def test_workers_clamp_to_available_cpus(self):
        from repro.sim.experiment import _available_cpus

        cpus = _available_cpus()
        clamped = ParallelSweepRunner(max_workers=cpus + 64)
        assert clamped.effective_workers(cpus + 64) == cpus
        unclamped = ParallelSweepRunner(max_workers=cpus + 64, clamp_to_cpus=False)
        assert unclamped.effective_workers(cpus + 64) == cpus + 64

    def test_default_workers_follow_cpu_count(self):
        from repro.sim.experiment import _available_cpus

        runner = ParallelSweepRunner()
        assert runner.effective_workers(1000) == _available_cpus()

    def test_chunk_size_default_and_validation(self):
        from repro.core.errors import ModelError

        runner = ParallelSweepRunner(max_workers=2, clamp_to_cpus=False)
        # Default: ~4 chunks per worker, never below 1.
        assert runner.effective_chunk_size(24, 2) == 3
        assert runner.effective_chunk_size(2, 2) == 1
        explicit = ParallelSweepRunner(chunk_size=5)
        assert explicit.effective_chunk_size(24, 2) == 5
        with pytest.raises(ModelError, match="chunk_size"):
            ParallelSweepRunner(chunk_size=0).effective_chunk_size(24, 2)


class TestRunnerSelection:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert isinstance(default_sweep_runner(), SerialSweepRunner)

    def test_env_var_turns_sweeps_parallel(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "2")
        runner = default_sweep_runner()
        assert isinstance(runner, ParallelSweepRunner)
        assert runner.max_workers == 2

    def test_parallel_sweeps_context_sets_and_restores(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert isinstance(default_sweep_runner(), SerialSweepRunner)
        with parallel_sweeps(2) as runner:
            assert default_sweep_runner() is runner
        assert isinstance(default_sweep_runner(), SerialSweepRunner)

    def test_set_default_sweep_runner_roundtrip(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        runner = ParallelSweepRunner(max_workers=2)
        set_default_sweep_runner(runner)
        try:
            assert default_sweep_runner() is runner
        finally:
            set_default_sweep_runner(None)
        assert isinstance(default_sweep_runner(), SerialSweepRunner)


class TestDetachedResults:
    def test_observed_parallel_run_ships_summary_not_live_session(self, tmp_path):
        obs = ObservabilityConfig(trace_path=str(tmp_path / "trace.json"))
        configs = [
            BASE.with_(algorithm=algorithm, observability=obs)
            for algorithm in ("basic", "random")
        ]
        results = run_configs(configs, runner=ParallelSweepRunner(**FORCED_POOL))
        for result in results:
            assert result.observation is None
            summary = result.observation_summary
            assert summary is not None
            assert summary.span_count("establish") == summary.counter_total(
                "coordinator.establish"
            )
            assert summary.span_count("qrg_build") > 0
            pickle.loads(pickle.dumps(result))
        # Each run exported to its own file instead of overwriting.
        written = sorted(p.name for p in tmp_path.iterdir())
        assert written == ["trace.run000.json", "trace.run001.json"]

    def test_serial_batch_derives_the_same_export_paths(self, tmp_path):
        obs = ObservabilityConfig(summary_path=str(tmp_path / "summary.txt"))
        configs = [
            BASE.with_(algorithm=algorithm, observability=obs)
            for algorithm in ("basic", "random")
        ]
        run_configs(configs, runner=SerialSweepRunner())
        written = sorted(p.name for p in tmp_path.iterdir())
        assert written == ["summary.run000.txt", "summary.run001.txt"]

    def test_detached_summary_matches_live_observation(self):
        config = BASE.with_(observability=ObservabilityConfig())
        [live] = run_configs([config], runner=SerialSweepRunner())
        [detached] = run_configs([config], runner=ParallelSweepRunner(max_workers=1))
        assert live.observation is not None
        expected = live.observation.summarize()
        assert detached.observation_summary.span_totals.keys() == expected.span_totals.keys()
        for name in expected.span_totals:
            assert detached.observation_summary.span_count(name) == expected.span_count(name)

    def test_unobserved_result_is_picklable(self):
        [result] = run_configs([BASE], runner=SerialSweepRunner())
        pickle.loads(pickle.dumps(result))


class TestObservationExclusivity:
    def test_nested_sessions_raise(self):
        with ObservationSession():
            with pytest.raises(ObservabilityError, match="already active"):
                with ObservationSession():
                    pass

    def test_session_registers_and_clears_active_marker(self):
        assert active_observation_session() is None
        with ObservationSession() as session:
            assert active_observation_session() is session
        assert active_observation_session() is None

    def test_failed_activation_leaves_first_session_usable(self):
        with ObservationSession() as outer:
            with pytest.raises(ObservabilityError):
                ObservationSession().__enter__()
            assert active_observation_session() is outer
        assert active_observation_session() is None

    def test_reset_worker_observability_clears_inherited_state(self):
        session = ObservationSession()
        session.__enter__()
        try:
            # Simulate what a forked pool worker inherits, then reset.
            reset_worker_observability()
            assert active_observation_session() is None
            with ObservationSession():
                pass
        finally:
            reset_worker_observability()
