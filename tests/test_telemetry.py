"""The telemetry plane: exposition parsing, the ring store, the scraper.

Covers the PR's acceptance properties: the exposition parser is the
exact inverse of the renderer (pinned against a committed golden file
that exercises ``+Inf``/``NaN`` values, escaped label text and
``# EXEMPLAR`` comment lines), the time-series store computes windowed
counter increases that survive process restarts, histogram rollups
merge bucket-by-bucket across shards, and the scraper discovers a live
daemon's and router's role/shard identity from their ``/healthz``
surfaces over real sockets.
"""

import asyncio
import math
from pathlib import Path

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import (
    ExpositionParseError,
    parse_exposition,
    registry_exposition,
    split_series_key,
)
from repro.obs.telemetry import (
    TelemetryScraper,
    TimeSeriesStore,
    UP_SERIES,
    WindowedHistogram,
    parse_selector,
    selector_matches,
)
from repro.service import DaemonConfig, ReservationDaemon, ServiceClient
from repro.cluster import ClusterConfig, ClusterDaemon

GOLDEN = Path(__file__).parent / "data" / "telemetry_golden.prom"

TRICKY_LABEL = 'quoted "reason" with \\backslash\\ and\nnewline'


def build_golden_registry() -> MetricsRegistry:
    """The registry whose rendering is pinned in ``telemetry_golden.prom``.

    Deliberately awkward: non-finite gauge values, a label value that
    needs every escape the format defines, and a histogram carrying
    per-bucket exemplars (including one in the overflow bucket).
    """
    registry = MetricsRegistry()
    registry.counter("daemon.sessions", outcome="established").inc(41)
    registry.counter("daemon.sessions", outcome=TRICKY_LABEL).inc(3)
    registry.gauge("budget.headroom").set(float("inf"))
    registry.gauge("budget.debt").set(float("-inf"))
    registry.gauge("clock.skew_seconds").set(float("nan"))
    registry.gauge("daemon.active_sessions").set(12)
    histogram = registry.histogram(
        "daemon.admission_phase_seconds",
        buckets=(0.001, 0.01, 0.1, 1.0),
        phase="plan",
    )
    histogram.observe(0.0004, exemplar="trace-aaaa")
    histogram.observe(0.03, exemplar="trace-bbbb")
    histogram.observe(0.03)
    histogram.observe(4.2, exemplar="trace-ffff")
    return registry


# ---------------------------------------------------------------------------
# renderer <-> parser round trip, pinned


def test_exposition_matches_committed_golden():
    rendered = registry_exposition(build_golden_registry())
    assert rendered == GOLDEN.read_text()


def test_golden_round_trips_through_parser():
    parsed = parse_exposition(GOLDEN.read_text())

    assert parsed.counters[
        'repro_daemon_sessions_total{outcome="established"}'
    ] == 41.0
    tricky_keys = [
        key for key in parsed.counters if "established" not in key
    ]
    assert len(tricky_keys) == 1
    _, labels = split_series_key(tricky_keys[0])
    assert labels["outcome"] == TRICKY_LABEL

    assert parsed.gauges["repro_budget_headroom"] == float("inf")
    assert parsed.gauges["repro_budget_debt"] == float("-inf")
    assert math.isnan(parsed.gauges["repro_clock_skew_seconds"])
    assert parsed.gauges["repro_daemon_active_sessions"] == 12.0

    key = 'repro_daemon_admission_phase_seconds{phase="plan"}'
    histogram = parsed.histograms[key]
    assert list(histogram.boundaries) == [0.001, 0.01, 0.1, 1.0]
    # Parsed bucket counts are per-bucket (non-cumulative) plus the
    # overflow entry, matching the live Histogram instrument's layout.
    assert list(histogram.bucket_counts) == [1.0, 0.0, 2.0, 0.0, 1.0]
    assert histogram.count == 4.0
    assert histogram.sum == pytest.approx(0.0004 + 0.03 + 0.03 + 4.2)

    assert len(parsed.exemplars) == 3
    by_trace = {ex.trace_id: ex for ex in parsed.exemplars}
    assert by_trace["trace-aaaa"].labels["le"] == "0.001"
    assert by_trace["trace-ffff"].labels["le"] == "+Inf"
    assert by_trace["trace-bbbb"].value == pytest.approx(0.03)

    assert parsed.types["repro_daemon_sessions_total"] == "counter"
    assert parsed.types["repro_daemon_admission_phase_seconds"] == "histogram"


def test_parse_rejects_malformed_lines():
    for bad in (
        "repro_x",                          # no value
        'repro_x{unclosed="v" 1.0',         # unterminated labels
        "repro_x not_a_number",             # bad value
        '# TYPE repro_x',                   # truncated TYPE header
    ):
        with pytest.raises(ExpositionParseError):
            parse_exposition(bad + "\n")


def test_untyped_samples_and_unknown_comments_are_tolerated():
    parsed = parse_exposition(
        "# HELP something free text, ignored\n"
        "mystery_metric 7\n"
    )
    assert parsed.untyped["mystery_metric"] == 7.0
    assert parsed.sample_count == 1


# ---------------------------------------------------------------------------
# selectors


def test_selector_parsing_and_matching():
    name, labels = parse_selector('repro_x{a="1",b=two}')
    assert name == "repro_x"
    assert labels == {"a": "1", "b": "two"}
    assert parse_selector("repro_y") == ("repro_y", {})

    sel = parse_selector('repro_x{verdict="established"}')
    assert selector_matches(sel, "repro_x",
                            {"verdict": "established", "shard": "shard-0"})
    assert not selector_matches(sel, "repro_x", {"verdict": "rejected"})
    assert not selector_matches(sel, "repro_z", {"verdict": "established"})


# ---------------------------------------------------------------------------
# the time-series store


def scrape_text(store: TimeSeriesStore, target: str, text: str, *,
                ts: float, role: str = "shard", shard: str = "shard-0"):
    store.record_scrape(target, parse_exposition(text), ts=ts,
                        role=role, shard=shard)


def test_counter_window_sum_and_restart_clamp():
    store = TimeSeriesStore()
    for ts, value in ((0.0, 10.0), (1.0, 14.0), (2.0, 2.0), (3.0, 5.0)):
        scrape_text(
            store, "a:1",
            "# TYPE repro_hits_total counter\n"
            f"repro_hits_total {value}\n",
            ts=ts,
        )
    # +4 (10->14), restart at ts=2 clamps the -12 to 0, then +3.
    assert store.counter_window_sum(
        ["repro_hits_total"], window=10.0, now=3.0
    ) == pytest.approx(7.0)
    # A window starting after ts=1 only sees the post-restart increase.
    assert store.counter_window_sum(
        ["repro_hits_total"], window=1.5, now=3.0
    ) == pytest.approx(3.0)
    assert store.counter_rate(
        ["repro_hits_total"], window=10.0, now=3.0
    ) == pytest.approx(0.7)


def test_counter_born_between_sweeps_counts_from_zero():
    # A label series that first appears after the target has already
    # been scraped (a burst of rejections landing entirely inside one
    # scrape interval) must contribute its full value to the window:
    # the store seeds an implied zero at the previous sweep.
    store = TimeSeriesStore()
    scrape_text(
        store, "a:1",
        "# TYPE repro_hits_total counter\n"
        'repro_hits_total{verdict="good"} 10\n',
        ts=0.0,
    )
    scrape_text(
        store, "a:1",
        "# TYPE repro_hits_total counter\n"
        'repro_hits_total{verdict="good"} 10\n'
        'repro_hits_total{verdict="bad"} 32\n',
        ts=1.0,
    )
    assert store.counter_window_sum(
        ['repro_hits_total{verdict="bad"}'], window=10.0, now=1.0
    ) == pytest.approx(32.0)
    # The pre-existing series keeps plain delta semantics: its first
    # observation (10 at ts=0, before we watched) is never counted.
    assert store.counter_window_sum(
        ['repro_hits_total{verdict="good"}'], window=10.0, now=1.0
    ) == pytest.approx(0.0)
    # Steady after birth: nothing new accrues.
    scrape_text(
        store, "a:1",
        "# TYPE repro_hits_total counter\n"
        'repro_hits_total{verdict="good"} 10\n'
        'repro_hits_total{verdict="bad"} 32\n',
        ts=2.0,
    )
    assert store.counter_window_sum(
        ['repro_hits_total{verdict="bad"}'], window=0.9, now=2.0
    ) == pytest.approx(0.0)


def test_latest_by_selector_spans_targets_and_roles():
    store = TimeSeriesStore()
    text = (
        "# TYPE repro_daemon_active_sessions gauge\n"
        "repro_daemon_active_sessions {value}\n"
    )
    scrape_text(store, "a:1", text.replace("{value}", "3"), ts=0.0,
                shard="shard-0")
    scrape_text(store, "b:2", text.replace("{value}", "5"), ts=0.0,
                shard="shard-1")
    store.record_unreachable("c:3", ts=0.0)

    rows = store.latest_by_selector("repro_daemon_active_sessions",
                                    role="shard")
    assert sorted((target, value) for target, _, value in rows) == [
        ("a:1", 3.0), ("b:2", 5.0)
    ]
    assert store.latest("c:3", UP_SERIES) == 0.0
    meta = {m.target: m for m in store.targets()}
    assert meta["c:3"].up is False
    assert meta["c:3"].consecutive_failures == 1
    assert meta["a:1"].up is True


def histogram_text(counts_by_bound, count, total):
    lines = ["# TYPE repro_daemon_admission_phase_seconds histogram"]
    cumulative = 0.0
    for bound, bucket in counts_by_bound:
        cumulative += bucket
        lines.append(
            'repro_daemon_admission_phase_seconds_bucket'
            f'{{le="{bound}",phase="plan"}} {cumulative}'
        )
    lines.append(
        'repro_daemon_admission_phase_seconds_bucket'
        f'{{le="+Inf",phase="plan"}} {count}'
    )
    lines.append(
        'repro_daemon_admission_phase_seconds_sum{phase="plan"} ' + str(total)
    )
    lines.append(
        'repro_daemon_admission_phase_seconds_count{phase="plan"} '
        + str(count)
    )
    return "\n".join(lines) + "\n"


def test_histogram_window_merges_across_shards():
    store = TimeSeriesStore()
    # Shard a: two scrapes; the delta is 2 fast + 1 slow observation.
    scrape_text(store, "a:1",
                histogram_text([("0.01", 0), ("0.1", 0)], 0, 0.0), ts=0.0)
    scrape_text(store, "a:1",
                histogram_text([("0.01", 2), ("0.1", 0)], 3, 1.3), ts=1.0,
                shard="shard-0")
    # Shard b: one observation lands in the second bucket.
    scrape_text(store, "b:2",
                histogram_text([("0.01", 0), ("0.1", 0)], 0, 0.0), ts=0.0,
                shard="shard-1")
    scrape_text(store, "b:2",
                histogram_text([("0.01", 0), ("0.1", 1)], 1, 0.05), ts=1.0,
                shard="shard-1")

    rollup = store.histogram_window(
        "repro_daemon_admission_phase_seconds",
        window=10.0, now=1.0, labels={"phase": "plan"},
    )
    assert rollup is not None
    assert rollup.boundaries == (0.01, 0.1)
    assert rollup.counts == [2.0, 1.0, 1.0]
    assert rollup.count == 4.0
    assert rollup.sum == pytest.approx(1.35)
    # 1 of 4 observations exceeded 0.1s.
    assert rollup.fraction_above(0.1) == pytest.approx(0.25)
    assert store.histogram_window(
        "repro_daemon_admission_phase_seconds",
        window=10.0, now=1.0, labels={"phase": "commit"},
    ) is None


def test_windowed_histogram_quantiles():
    rollup = WindowedHistogram(
        boundaries=(0.01, 0.1, 1.0),
        counts=[8.0, 1.0, 1.0, 0.0],
        count=10.0,
        sum=0.3,
    )
    assert rollup.quantile(0.5) <= 0.01
    assert 0.01 < rollup.quantile(0.9) <= 0.1
    assert rollup.fraction_above(0.01) == pytest.approx(0.2)
    assert rollup.fraction_above(1.0) == 0.0
    empty = WindowedHistogram(boundaries=(1.0,), counts=[0.0, 0.0],
                              count=0.0, sum=0.0)
    assert empty.quantile(0.99) == 0.0
    assert empty.fraction_above(1.0) == 0.0


# ---------------------------------------------------------------------------
# the scraper, over real sockets


def test_scraper_discovers_roles_and_ingests_fleet_metrics():
    async def scenario():
        daemon = ReservationDaemon(
            DaemonConfig(port=0, seed=11, shard_index=0, shard_count=1)
        )
        await daemon.start()
        router = ClusterDaemon(ClusterConfig(
            shards=(("127.0.0.1", daemon.port),), port=0, seed=11
        ))
        await router.start()
        client = ServiceClient("127.0.0.1", router.port)
        store = TimeSeriesStore()
        scraper = TelemetryScraper(
            [("127.0.0.1", daemon.port), ("127.0.0.1", router.port)],
            store, interval=0.1, timeout=2.0,
        )
        try:
            outcome = await client.establish(
                service="S2", domain="D1", session_id="scrape-1",
                duration=30.0,
            )
            assert outcome["success"] is True
            result = await scraper.scrape_once()
            assert not result.unreachable

            meta = {m.target: m for m in store.targets()}
            shard_key = TelemetryScraper.target_key("127.0.0.1", daemon.port)
            router_key = TelemetryScraper.target_key("127.0.0.1", router.port)
            assert meta[shard_key].role == "shard"
            assert meta[shard_key].shard == "shard-0"
            assert meta[shard_key].last_health["shard_count"] == 1
            assert meta[router_key].role == "cluster-router"

            # The shard's enriched scrape surface.
            assert store.latest(
                shard_key, "repro_daemon_active_sessions"
            ) == 1.0
            assert store.latest(
                shard_key,
                'repro_daemon_sessions_total{outcome="established"}',
            ) == 1.0
            assert store.latest(shard_key, "repro_daemon_shard_count") == 1.0
            lease_rows = store.latest_by_selector(
                "repro_daemon_lease_operations_total", role="shard"
            )
            assert lease_rows, "lease counters must be exported"

            # Scrape again so phase-latency deltas exist, then roll up.
            await client.establish(
                service="S3", domain="D2", session_id="scrape-2",
                duration=30.0,
            )
            await scraper.scrape_once()
            rollup = store.histogram_window(
                "repro_daemon_admission_phase_seconds",
                window=60.0, now=result.ts + 60.0,
                role="shard", labels={"phase": "plan"},
            )
            assert rollup is not None and rollup.count >= 1.0

            # Down targets: unreachable ports record up=0 without
            # disturbing the live targets.
            dead = TelemetryScraper([("127.0.0.1", 1)], store, timeout=0.5)
            try:
                result = await dead.scrape_once()
                assert result.unreachable == 1
                assert store.latest("127.0.0.1:1", UP_SERIES) == 0.0
            finally:
                await dead.aclose()
        finally:
            await scraper.aclose()
            await client.aclose()
            await router.shutdown()
            await daemon.shutdown()

    asyncio.run(scenario())


def test_router_metrics_classify_infra_and_merit_rejections():
    async def scenario():
        daemon = ReservationDaemon(
            DaemonConfig(port=0, seed=11, shard_index=0, shard_count=1)
        )
        await daemon.start()
        router = ClusterDaemon(ClusterConfig(
            shards=(("127.0.0.1", daemon.port),), port=0, seed=11
        ))
        await router.start()
        client = ServiceClient("127.0.0.1", router.port)
        try:
            await client.establish(service="S2", domain="D1",
                                   session_id="ok-1", duration=30.0)
            text = await client.metrics()
            parsed = parse_exposition(text)
            assert parsed.counters[
                'repro_cluster_admissions_total{verdict="established"}'
            ] == 1.0
            assert parsed.gauges[
                'repro_cluster_shard_reachable{shard="shard-0"}'
            ] == 1.0
            assert parsed.gauges["repro_cluster_shard_count"] == 1.0
            # Session bookkeeping lives on the shard in single-shard
            # mode; the router still exports the gauge (at zero) so
            # dashboards see a uniform surface.
            assert "repro_cluster_active_sessions" in parsed.gauges
            assert parsed.gauges["repro_cluster_pending_teardown_sessions"] == 0.0
        finally:
            await client.aclose()
            await router.shutdown()
            await daemon.shutdown()

    asyncio.run(scenario())
