"""Tests for resource vectors, contention indices, and snapshots."""

import math

import pytest

from repro.core import (
    AvailabilitySnapshot,
    IncomparableError,
    ModelError,
    ResourceObservation,
    ResourceVector,
    headroom_contention_index,
    log_contention_index,
    ratio_contention_index,
)


class TestResourceVector:
    def test_requires_entries(self):
        with pytest.raises(ModelError):
            ResourceVector({})

    def test_rejects_negative_and_nonfinite(self):
        with pytest.raises(ModelError):
            ResourceVector({"cpu": -1})
        with pytest.raises(ModelError):
            ResourceVector({"cpu": float("nan")})

    def test_ordering(self):
        small = ResourceVector(cpu=5, net=10)
        big = ResourceVector(cpu=10, net=20)
        assert small <= big and small < big
        assert big >= small and big > small
        incomparable = ResourceVector(cpu=20, net=5)
        assert not (incomparable <= big) and not (big <= incomparable)

    def test_ordering_requires_same_resources(self):
        with pytest.raises(IncomparableError):
            _ = ResourceVector(cpu=5) <= ResourceVector(net=5)

    def test_scaled(self):
        doubled = ResourceVector(cpu=5, net=10).scaled(2)
        assert doubled == ResourceVector(cpu=10, net=20)
        with pytest.raises(ModelError):
            ResourceVector(cpu=5).scaled(0)

    def test_merged_sum(self):
        merged = ResourceVector(cpu=5).merged_sum(ResourceVector(cpu=2, net=1))
        assert merged == ResourceVector(cpu=7, net=1)

    def test_satisfiable_under(self):
        req = ResourceVector(cpu=5, net=10)
        assert req.satisfiable_under({"cpu": 5, "net": 10})
        assert not req.satisfiable_under({"cpu": 4, "net": 10})
        with pytest.raises(ModelError):
            req.satisfiable_under({"cpu": 5})


class TestContention:
    def test_ratio_index_matches_eq2(self):
        assert ratio_contention_index(25, 100) == 0.25
        assert ratio_contention_index(1, 0) == math.inf

    def test_headroom_index(self):
        assert headroom_contention_index(25, 100) == 25 / 75
        assert headroom_contention_index(100, 100) == math.inf

    def test_log_index(self):
        assert log_contention_index(0, 100) == 0.0
        assert log_contention_index(100, 100) == math.inf
        # monotone in requirement
        assert log_contention_index(10, 100) < log_contention_index(20, 100)

    def test_all_indices_monotone(self):
        for index in (ratio_contention_index, headroom_contention_index, log_contention_index):
            assert index(10, 100) < index(20, 100), index
            assert index(10, 100) > index(10, 200), index

    def test_contention_report_bottleneck(self):
        req = ResourceVector(cpu=10, net=50)
        report = req.contention({"cpu": 100, "net": 100})
        assert report.bottleneck_resource == "net"
        assert report.psi == 0.5
        assert report.per_resource["cpu"] == 0.1
        assert report.feasible

    def test_contention_report_tie_is_deterministic(self):
        req = ResourceVector(a=10, b=10)
        report = req.contention({"a": 100, "b": 100})
        assert report.bottleneck_resource == "b"  # (psi, name) max -> lexicographically last

    def test_infeasible_report(self):
        report = ResourceVector(cpu=200).contention({"cpu": 100})
        assert not report.feasible


class TestObservationsAndSnapshots:
    def test_observation_validation(self):
        with pytest.raises(ModelError):
            ResourceObservation(available=-1)
        with pytest.raises(ModelError):
            ResourceObservation(available=1, alpha=-0.1)

    def test_snapshot_from_amounts(self):
        snapshot = AvailabilitySnapshot.from_amounts({"cpu": 10, "net": 20})
        assert snapshot["cpu"].available == 10
        assert snapshot["cpu"].alpha == 1.0
        assert snapshot.availability() == {"cpu": 10, "net": 20}
        assert len(snapshot) == 2

    def test_snapshot_type_checked(self):
        with pytest.raises(ModelError):
            AvailabilitySnapshot({"cpu": 10})  # not an observation
