"""The repro-obs CLI: each subcommand against a real exported trace."""

import json
from pathlib import Path

import pytest

from repro.obs.cli import main

GOLDEN_DIR = Path(__file__).parent / "data"
GOLDEN_V1 = str(GOLDEN_DIR / "trace_v1_golden.json")
GOLDEN_V2 = str(GOLDEN_DIR / "trace_v2_golden.json")
GOLDEN_V3 = str(GOLDEN_DIR / "trace_v3_golden.json")


@pytest.fixture(scope="module")
def sim_trace(tmp_path_factory):
    """A real exported trace from a small tradeoff run."""
    from repro.obs import ObservabilityConfig
    from repro.sim import SimulationConfig, run_simulation
    from repro.sim.workload import WorkloadSpec

    path = tmp_path_factory.mktemp("cli") / "trace.json"
    config = SimulationConfig(
        algorithm="tradeoff",
        seed=7,
        workload=WorkloadSpec(rate_per_60tu=150.0, horizon=150.0),
        observability=ObservabilityConfig(trace_path=str(path)),
    )
    run_simulation(config)
    return str(path)


class TestSummarize:
    def test_sections_present(self, sim_trace, capsys):
        assert main(["summarize", sim_trace]) == 0
        out = capsys.readouterr().out
        assert "schema v4" in out
        assert "per-phase timings:" in out
        assert "reservation events:" in out
        assert "per-broker admission:" in out
        assert "bottleneck resources:" in out
        assert "session.admitted" in out

    def test_v1_documents_summarize_without_event_sections(self, capsys):
        assert main(["summarize", GOLDEN_V1]) == 0
        out = capsys.readouterr().out
        assert "schema v1" in out
        assert "per-phase timings:" in out
        assert "reservation events:" not in out

    def test_missing_file_exits_nonzero(self):
        with pytest.raises(SystemExit, match="no such file"):
            main(["summarize", "/nonexistent/trace.json"])

    def test_non_trace_json_rejected(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text('{"hello": 1}')
        with pytest.raises(SystemExit, match="schema_version"):
            main(["summarize", str(bogus)])


class TestCriticalPath:
    def test_per_session_breakdown(self, capsys):
        assert main(["critical-path", GOLDEN_V2]) == 0
        out = capsys.readouterr().out
        assert "session ssn-1" in out
        assert "critical phase: establish" in out
        assert "aggregate self time over 2 sessions:" in out

    def test_session_filter(self, capsys):
        assert main(["critical-path", GOLDEN_V2, "--session", "ssn-2"]) == 0
        out = capsys.readouterr().out
        assert "ssn-2" in out and "ssn-1" not in out
        with pytest.raises(SystemExit, match="no establish span"):
            main(["critical-path", GOLDEN_V2, "--session", "nope"])

    def test_real_trace_breakdown(self, sim_trace, capsys):
        assert main(["critical-path", sim_trace, "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "qrg_build" in out and "phase3_dispatch" in out


class TestTop:
    def test_ranks_bottlenecks(self, capsys):
        assert main(["top", GOLDEN_V2, "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "cpu:H1" in out
        assert "per-broker admission:" in out

    def test_v1_has_no_signals(self, capsys):
        assert main(["top", GOLDEN_V1]) == 0
        assert "no bottleneck signals" in capsys.readouterr().out


class TestDiff:
    def test_identical_documents_gate_ok(self, capsys):
        assert main(["diff", GOLDEN_V2, GOLDEN_V2, "--gate"]) == 0
        assert "gate: OK" in capsys.readouterr().out

    def test_gate_flags_structural_change(self, tmp_path, capsys):
        payload = json.loads(Path(GOLDEN_V2).read_text())
        payload["event_counts"]["session.rejected"] = 10
        changed = tmp_path / "changed.json"
        changed.write_text(json.dumps(payload))
        assert main(
            ["diff", GOLDEN_V2, str(changed), "--gate", "--tolerance", "0.5"]
        ) == 1
        out = capsys.readouterr().out
        assert "event_counts.session.rejected" in out
        assert "+900.0%" in out

    def test_ledger_diff_ignores_timing(self, tmp_path, capsys):
        base = {"schema": "bench-ledger/1", "headline": {"speedup": 4.0, "warm_seconds": 1.0}}
        new = {"schema": "bench-ledger/1", "headline": {"speedup": 4.2, "warm_seconds": 3.0}}
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(base))
        b.write_text(json.dumps(new))
        assert main(
            ["diff", str(a), str(b), "--gate", "--tolerance", "0.25", "--ignore-timing"]
        ) == 0
        # without --ignore-timing the warm_seconds blow-up gates
        assert main(["diff", str(a), str(b), "--gate", "--tolerance", "0.25"]) == 1

    def test_changed_only_hides_identical_leaves(self, capsys):
        assert main(["diff", GOLDEN_V2, GOLDEN_V2, "--changed-only"]) == 0
        out = capsys.readouterr().out
        assert "event_counts" not in out  # all identical, all hidden

    def test_gate_keys_timing_on_runner_fingerprint(self, tmp_path, capsys):
        def ledger(fingerprint, seconds):
            doc = {
                "schema": "bench-ledger/1",
                "headline": {"speedup": 4.0, "warm_seconds": seconds},
            }
            if fingerprint is not None:
                doc["runner"] = {"fingerprint": fingerprint, "cpus": "8"}
            return doc

        def write(name, doc):
            target = tmp_path / f"{name}.json"
            target.write_text(json.dumps(doc))
            return str(target)

        base = write("base", ledger("aaa-8c-py3.11", 1.0))
        # same machine: the timing blow-up gates
        same = write("same", ledger("aaa-8c-py3.11", 3.0))
        assert main(["diff", base, same, "--gate"]) == 1
        capsys.readouterr()
        # different machine: timing leaves drop out of the gate
        other = write("other", ledger("bbb-4c-py3.12", 3.0))
        assert main(["diff", base, other, "--gate"]) == 0
        out = capsys.readouterr().out
        assert "runner fingerprints differ" in out
        assert "aaa-8c-py3.11" in out and "bbb-4c-py3.12" in out
        # fingerprint on one side only: also excluded (unknown machine)
        legacy = write("legacy", ledger(None, 3.0))
        assert main(["diff", base, legacy, "--gate"]) == 0
        assert "unrecorded" in capsys.readouterr().out
        # structural leaves still gate regardless of the fingerprint
        # (speedup is a wall-clock ratio, so it is *not* structural)
        slower = write(
            "slower",
            {
                "schema": "bench-ledger/1",
                "runner": {"fingerprint": "bbb-4c-py3.12"},
                "headline": {"speedup": 4.0, "warm_seconds": 3.0, "sessions": 7},
            },
        )
        base_structural = write(
            "base_structural",
            {
                "schema": "bench-ledger/1",
                "runner": {"fingerprint": "aaa-8c-py3.11"},
                "headline": {"speedup": 4.0, "warm_seconds": 1.0, "sessions": 100},
            },
        )
        assert main(["diff", base_structural, slower, "--gate"]) == 1
        assert "headline.sessions" in capsys.readouterr().out

    def test_gate_uses_recorded_timing_baseline_for_new_runner(
        self, tmp_path, capsys
    ):
        def write(name, doc):
            target = tmp_path / f"{name}.json"
            target.write_text(json.dumps(doc))
            return str(target)

        base = write(
            "base",
            {
                "schema": "bench-ledger/1",
                "runner": {"fingerprint": "aaa-8c-py3.11"},
                "headline": {"speedup": 4.0, "warm_seconds": 1.0},
                # A timing baseline previously measured on runner bbb:
                # its wall clocks hard-compare even though the headline
                # was measured on runner aaa.
                "timing_baselines": {
                    "aaa-8c-py3.11": {
                        "headline.speedup": 4.0,
                        "headline.warm_seconds": 1.0,
                    },
                    "bbb-4c-py3.12": {
                        "headline.speedup": 2.0,
                        "headline.warm_seconds": 2.0,
                    },
                },
            },
        )
        # In-band against bbb's recorded baseline -> gate OK (hard gate,
        # not an exclusion: the message says what it compared against).
        ok = write(
            "ok",
            {
                "schema": "bench-ledger/1",
                "runner": {"fingerprint": "bbb-4c-py3.12"},
                "headline": {"speedup": 2.1, "warm_seconds": 2.2},
            },
        )
        assert main(["diff", base, ok, "--gate"]) == 0
        out = capsys.readouterr().out
        assert "gated against the baseline recorded for bbb-4c-py3.12" in out
        # Out of band against bbb's recorded baseline -> hard failure.
        regressed = write(
            "regressed",
            {
                "schema": "bench-ledger/1",
                "runner": {"fingerprint": "bbb-4c-py3.12"},
                "headline": {"speedup": 0.8, "warm_seconds": 6.0},
            },
        )
        assert main(["diff", base, regressed, "--gate"]) == 1
        out = capsys.readouterr().out
        assert "headline.warm_seconds" in out and "headline.speedup" in out

    def test_timing_tolerance_band_is_separate(self, tmp_path, capsys):
        def write(name, doc):
            target = tmp_path / f"{name}.json"
            target.write_text(json.dumps(doc))
            return str(target)

        runner = {"fingerprint": "aaa-8c-py3.11"}
        base = write(
            "base",
            {"schema": "bench-ledger/1", "runner": runner,
             "headline": {"warm_seconds": 1.0, "sessions": 100}},
        )
        new = write(
            "new",
            {"schema": "bench-ledger/1", "runner": runner,
             "headline": {"warm_seconds": 1.4, "sessions": 100}},
        )
        # +40% wall clock: outside the structural band, inside the
        # default +-50% timing band.
        assert main(["diff", base, new, "--gate", "--tolerance", "0.25"]) == 0
        capsys.readouterr()
        assert main(
            ["diff", base, new, "--gate", "--timing-tolerance", "0.1"]
        ) == 1
        assert "headline.warm_seconds" in capsys.readouterr().out


@pytest.fixture(scope="module")
def monitored_trace(tmp_path_factory):
    """A trace recorded with the live monitoring plane adapting."""
    from repro.obs import ObservabilityConfig
    from repro.obs.monitor import MonitorConfig
    from repro.sim import SimulationConfig, run_simulation
    from repro.sim.workload import WorkloadSpec

    path = tmp_path_factory.mktemp("cli-monitor") / "trace.json"
    config = SimulationConfig(
        algorithm="tradeoff",
        seed=7,
        staleness=2.0,
        workload=WorkloadSpec(rate_per_60tu=140.0, horizon=120.0),
        monitoring=MonitorConfig(adapt=True),
        observability=ObservabilityConfig(trace_path=str(path)),
    )
    run_simulation(config)
    return str(path)


class TestWatch:
    def test_recorded_timeline(self, monitored_trace, capsys):
        assert main(["watch", monitored_trace]) == 0
        out = capsys.readouterr().out
        assert "recorded by the run's live monitor" in out
        assert "session.drift" in out
        assert "session.renegotiated" in out

    def test_kind_filter_and_limit(self, monitored_trace, capsys):
        assert main(
            ["watch", monitored_trace, "--kind", "session.drift", "--limit", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "session.renegotiated" not in out
        assert "truncated at 5 lines" in out

    def test_unmonitored_trace_replays_offline(self, sim_trace, capsys):
        assert main(["watch", sim_trace]) == 0
        out = capsys.readouterr().out
        assert "replayed offline" in out
        assert "broker.observed" in out

    def test_threshold_override_forces_replay(self, monitored_trace, capsys):
        assert main(["watch", monitored_trace, "--threshold", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "replayed offline" in out

    def test_v1_trace_has_nothing_to_watch(self, capsys):
        assert main(["watch", GOLDEN_V1]) == 0
        assert "no event log" in capsys.readouterr().out


class TestMonitorReport:
    def test_recorded_monitoring_section(self, monitored_trace, capsys):
        assert main(["monitor-report", monitored_trace]) == 0
        out = capsys.readouterr().out
        assert "recorded by the run's live monitor" in out
        assert "adaptation loop:" in out
        assert "per-broker estimators:" in out
        assert "causal chains (from the event log):" in out
        assert "-> renegotiated seq" in out

    def test_golden_v3_report(self, capsys):
        assert main(["monitor-report", GOLDEN_V3, "--pairs", "1"]) == 0
        out = capsys.readouterr().out
        assert "drift_detected" in out
        assert "outcome downgraded" in out
        assert "ssn-1: trigger seq" in out

    def test_unmonitored_trace_replays_offline(self, sim_trace, capsys):
        assert main(["monitor-report", sim_trace]) == 0
        out = capsys.readouterr().out
        assert "replayed offline" in out
        assert "per-broker estimators:" in out

    def test_v1_trace_has_nothing_to_report(self, capsys):
        assert main(["monitor-report", GOLDEN_V1]) == 0
        assert "nothing to report" in capsys.readouterr().out


class TestExportProm:
    def test_stdout_exposition(self, capsys):
        assert main(["export-prom", GOLDEN_V1]) == 0
        out = capsys.readouterr().out
        assert 'repro_broker_grants_total{resource="cpu:H1"} 2.0' in out

    def test_output_file_and_prefix(self, tmp_path):
        target = tmp_path / "metrics.prom"
        assert main(
            ["export-prom", GOLDEN_V1, "-o", str(target), "--prefix", "paper_"]
        ) == 0
        assert "paper_broker_grants_total" in target.read_text()

    def test_real_trace_exposition(self, sim_trace, capsys):
        assert main(["export-prom", sim_trace]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_coordinator_establish_seconds histogram" in out
        assert 'le="+Inf"' in out


class TestDashboard:
    """The live fleet dashboard, against real subprocess daemons.

    The fleet must live in other processes: the dashboard command owns
    its own event loop, and an in-process daemon's listening socket
    dies with the loop that created it.
    """

    @pytest.fixture
    def fleet(self):
        import os
        import re
        import subprocess
        import sys as _sys

        repo = Path(__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src")

        def spawn(argv, pattern):
            process = subprocess.Popen(
                [_sys.executable, "-m"] + argv, cwd=repo, env=env,
                stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
                text=True,
            )
            line = process.stdout.readline()
            match = re.search(pattern, line)
            assert match, f"no boot line: {line!r}"
            return process, int(match.group(1))

        shard, shard_port = spawn(
            ["repro.service.cli", "--port", "0", "--seed", "11"],
            r"repro-serve: listening on [^:]+:(\d+) ",
        )
        router, router_port = spawn(
            ["repro.cluster.cli", "--port", "0", "--seed", "11",
             "--shard", f"127.0.0.1:{shard_port}"],
            r"repro-cluster: listening on [^:]+:(\d+) ",
        )
        try:
            yield shard_port, router_port
        finally:
            for process in (router, shard):
                process.terminate()
            for process in (router, shard):
                process.wait(timeout=10)

    def test_snapshot_one_shot(self, fleet, tmp_path, capsys):
        shard_port, router_port = fleet
        snapshot = tmp_path / "telemetry.json"
        assert main([
            "dashboard",
            f"127.0.0.1:{shard_port}", f"127.0.0.1:{router_port}",
            "--interval", "0.05", "--iterations", "2",
            "--snapshot-json", str(snapshot), "--no-ansi",
        ]) == 0
        out = capsys.readouterr().out
        # rendered frames + the snapshot confirmation
        assert "admission-availability" in out
        assert "snapshot written" in out
        document = json.loads(snapshot.read_text())
        assert document["schema"] == "telemetry-dashboard/1"
        assert document["sweeps"] == 2
        targets = {t["role"]: t for t in document["targets"]}
        assert set(targets) == {"shard", "cluster-router"}
        assert targets["shard"]["up"] and targets["shard"]["shard"]
        assert document["firing"] == []
        slos = {s["slo"] for s in document["slos"]}
        assert slos == {"admission-availability", "admission-latency"}

    def test_slo_config_loads_and_validates(self, fleet, tmp_path):
        _, router_port = fleet
        config = tmp_path / "slos.json"
        config.write_text(json.dumps({"slos": [{
            "name": "custom-avail", "kind": "availability", "target": 0.9,
            "good": ['repro_cluster_admissions_total{verdict="established"}'],
            "bad": ['repro_cluster_admissions_total{verdict="rejected_infra"}'],
            "short_window": 1.0, "long_window": 2.0, "budget_window": 4.0,
        }]}))
        snapshot = tmp_path / "telemetry.json"
        assert main([
            "dashboard", f"127.0.0.1:{router_port}",
            "--interval", "0.05", "--iterations", "1",
            "--slo-config", str(config),
            "--snapshot-json", str(snapshot), "--no-ansi", "--quiet",
        ]) == 0
        document = json.loads(snapshot.read_text())
        assert [s["slo"] for s in document["slos"]] == ["custom-avail"]

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"slos": [{"name": "x"}]}))
        with pytest.raises(SystemExit):
            main(["dashboard", "127.0.0.1:1", "--iterations", "1",
                  "--slo-config", str(bad)])
