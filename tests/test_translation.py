"""Tests for translation functions (T_c plug-ins)."""

import pytest

from repro.core import (
    CallableTranslation,
    ModelError,
    QoSLevel,
    QoSVector,
    ResourceVector,
    ScaledTranslation,
    TabularTranslation,
    TranslationError,
    TranslationFunction,
)


def lv(label: str, q: int = 1) -> QoSLevel:
    return QoSLevel(label, QoSVector(q=q))


class TestTabularTranslation:
    def test_empty_table_rejected(self):
        with pytest.raises(ModelError):
            TabularTranslation({})

    def test_lookup_and_missing_pairs(self):
        table = TabularTranslation({("Qa", "Qb"): {"cpu": 5}})
        assert table(lv("Qa"), lv("Qb")) == ResourceVector(cpu=5)
        assert table(lv("Qa"), lv("Qz")) is None

    def test_entry_raises_on_missing(self):
        table = TabularTranslation({("Qa", "Qb"): {"cpu": 5}})
        with pytest.raises(TranslationError):
            table.entry("Qa", "Qz")

    def test_inconsistent_slots_rejected(self):
        with pytest.raises(ModelError):
            TabularTranslation({("a", "b"): {"cpu": 1}, ("a", "c"): {"net": 1}})

    def test_key_types_validated(self):
        with pytest.raises(ModelError):
            TabularTranslation({(1, "b"): {"cpu": 1}})

    def test_slots_and_pairs(self):
        table = TabularTranslation(
            {("a", "b"): {"cpu": 1, "net": 2}, ("a", "c"): {"cpu": 3, "net": 4}}
        )
        assert table.slots == frozenset({"cpu", "net"})
        assert table.pairs == (("a", "b"), ("a", "c"))

    def test_mapped_transform(self):
        table = TabularTranslation({("a", "b"): {"cpu": 10}})
        halved = table.mapped(lambda _key, vec: vec.scaled(0.5))
        assert halved.entry("a", "b") == ResourceVector(cpu=5)
        # original untouched
        assert table.entry("a", "b") == ResourceVector(cpu=10)

    def test_satisfies_protocol(self):
        table = TabularTranslation({("a", "b"): {"cpu": 1}})
        assert isinstance(table, TranslationFunction)


class TestScaledTranslation:
    def test_scales_requirements(self):
        base = TabularTranslation({("a", "b"): {"cpu": 5, "net": 10}})
        fat = ScaledTranslation(base, 10.0)
        assert fat(lv("a"), lv("b")) == ResourceVector(cpu=50, net=100)
        assert fat.factor == 10.0
        assert fat.base is base

    def test_passes_none_through(self):
        base = TabularTranslation({("a", "b"): {"cpu": 5}})
        fat = ScaledTranslation(base, 2.0)
        assert fat(lv("a"), lv("zz")) is None

    def test_identity_factor_returns_same_vector(self):
        base = TabularTranslation({("a", "b"): {"cpu": 5}})
        assert ScaledTranslation(base, 1.0)(lv("a"), lv("b")) is base(lv("a"), lv("b"))

    def test_invalid_factor(self):
        base = TabularTranslation({("a", "b"): {"cpu": 5}})
        with pytest.raises(ModelError):
            ScaledTranslation(base, 0.0)


class TestCallableTranslation:
    def test_wraps_formula(self):
        def formula(qin, qout):
            return {"cpu": float(qin.vector["q"] + qout.vector["q"])}

        translation = CallableTranslation(formula)
        assert translation(lv("a", 2), lv("b", 3)) == ResourceVector(cpu=5)

    def test_none_means_unsupported(self):
        translation = CallableTranslation(lambda qin, qout: None)
        assert translation(lv("a"), lv("b")) is None

    def test_resource_vector_passthrough(self):
        vector = ResourceVector(cpu=1)
        translation = CallableTranslation(lambda qin, qout: vector)
        assert translation(lv("a"), lv("b")) is vector
