"""Tests for AvailabilityHistory: alpha windows and change logs."""

import pytest

from repro.brokers import AvailabilityHistory
from repro.core.errors import BrokerError


class TestAlpha:
    def test_first_report_is_neutral(self):
        history = AvailabilityHistory(window=3.0)
        assert history.alpha(0.0, 100.0) == 1.0

    def test_alpha_is_ratio_to_window_mean(self):
        history = AvailabilityHistory(window=3.0)
        history.alpha(0.0, 100.0)
        history.alpha(1.0, 60.0)
        # mean of {100, 60} = 80; current 40 -> 0.5
        assert history.alpha(2.0, 40.0) == pytest.approx(0.5)

    def test_window_drops_old_reports(self):
        history = AvailabilityHistory(window=3.0)
        history.alpha(0.0, 10.0)
        # t=5: the t=0 report is outside (5-3, 5]
        assert history.alpha(5.0, 100.0) == 1.0

    def test_zero_mean_guard(self):
        history = AvailabilityHistory(window=3.0)
        history.alpha(0.0, 0.0)
        assert history.alpha(1.0, 50.0) == 1.0

    def test_window_must_be_positive(self):
        with pytest.raises(BrokerError):
            AvailabilityHistory(window=0.0)


class TestChangeLog:
    def test_value_at_reconstructs_history(self):
        history = AvailabilityHistory()
        history.record_change(0.0, 100.0)
        history.record_change(5.0, 60.0)
        history.record_change(9.0, 80.0)
        assert history.value_at(0.0) == 100.0
        assert history.value_at(4.9) == 100.0
        assert history.value_at(5.0) == 60.0
        assert history.value_at(7.0) == 60.0
        assert history.value_at(100.0) == 80.0

    def test_value_before_first_record_clamps(self):
        history = AvailabilityHistory()
        history.record_change(5.0, 60.0)
        assert history.value_at(1.0) == 60.0

    def test_value_with_no_records(self):
        assert AvailabilityHistory().value_at(1.0) is None

    def test_same_time_overwrites(self):
        history = AvailabilityHistory()
        history.record_change(1.0, 50.0)
        history.record_change(1.0, 40.0)
        assert history.value_at(1.0) == 40.0
        assert len(history) == 1

    def test_out_of_order_rejected(self):
        history = AvailabilityHistory()
        history.record_change(5.0, 50.0)
        with pytest.raises(BrokerError):
            history.record_change(4.0, 60.0)

    def test_latest(self):
        history = AvailabilityHistory()
        assert history.latest() is None
        history.record_change(2.0, 30.0)
        assert history.latest() == (2.0, 30.0)

    def test_max_changes_bound(self):
        history = AvailabilityHistory(max_changes=2)
        for t in range(5):
            history.record_change(float(t), float(t * 10))
        assert len(history) == 2
        # clamped to the oldest retained point
        assert history.value_at(0.0) == 30.0
