"""HTTP/1.1 keep-alive in the service client/daemon, and typed draining.

The client pools one connection per (host, port) and reuses it across
sequential requests; ``Connection: close`` (sent, received, or implied
by ``keep_alive=False``) ends the reuse.  A pooled socket that died
while idle is retried once -- but only when it failed before any
response bytes, so a request is never silently executed twice.  A
draining daemon's 503 surfaces as the typed
:class:`~repro.service.client.ServiceDrainingError` so callers can
distinguish "try another replica" from a real error, and the load
generator reports its connection economics in the ledger.
"""

import asyncio

import pytest

from repro.service import (
    DaemonConfig,
    ReservationDaemon,
    ServiceClient,
    ServiceClientError,
    ServiceDrainingError,
)
from repro.service.loadgen import LoadGenConfig, run_load
from repro.sim.workload import WorkloadSpec


async def start_daemon(**overrides) -> ReservationDaemon:
    overrides.setdefault("port", 0)
    daemon = ReservationDaemon(DaemonConfig(**overrides))
    await daemon.start()
    return daemon


def test_sequential_requests_reuse_one_connection():
    async def scenario():
        daemon = await start_daemon(seed=3)
        try:
            client = ServiceClient("127.0.0.1", daemon.port)
            for _ in range(6):
                await client.healthz()
            assert client.connections_opened == 1
            assert client.connections_reused == 5
            await client.aclose()
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())


def test_keep_alive_disabled_opens_per_request():
    async def scenario():
        daemon = await start_daemon(seed=3)
        try:
            client = ServiceClient("127.0.0.1", daemon.port, keep_alive=False)
            for _ in range(4):
                await client.healthz()
            assert client.connections_opened == 4
            assert client.connections_reused == 0
            await client.aclose()
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())


def test_stale_pooled_connection_is_retried_once():
    async def scenario():
        daemon = await start_daemon(seed=3)
        port = daemon.port
        client = ServiceClient("127.0.0.1", port)
        await client.healthz()  # pools the socket
        await daemon.shutdown()  # kills it under the client
        # Same port, fresh daemon: the pooled socket is dead, the
        # client must transparently reconnect (the request never
        # reached a server, so the retry cannot double-execute).
        daemon = await start_daemon(seed=3, port=port)
        try:
            health = await client.healthz()
            assert health["status"] == "ok"
            assert client.connections_opened == 2
            await client.aclose()
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())


def test_draining_daemon_raises_typed_error():
    async def scenario():
        daemon = await start_daemon(seed=3)
        try:
            client = ServiceClient("127.0.0.1", daemon.port)
            outcome = await client.establish(
                service="S2", domain="D1", session_id="pre-drain"
            )
            assert outcome["success"] is True
            daemon._draining = True
            with pytest.raises(ServiceDrainingError) as drained:
                await client.establish(service="S3", domain="D2")
            assert drained.value.status == 503
            # The typed error is still a ServiceClientError, so
            # pre-existing broad handlers keep working.
            assert isinstance(drained.value, ServiceClientError)
            # Teardown is drain-exempt: drain refuses new work, never
            # the freeing of old work (a draining shard that refused
            # teardowns would strand its sessions' holds).
            released = await client.teardown("pre-drain")
            assert released["released"] > 0
            await client.aclose()
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())


def test_loadgen_reports_connection_reuse():
    async def scenario():
        daemon = await start_daemon(seed=11)
        try:
            config = LoadGenConfig(
                workload=WorkloadSpec(rate_per_60tu=600.0, horizon=3.0),
                seed=7,
                time_scale=0.001,
                max_hold_seconds=0.02,
            )
            report = await run_load("127.0.0.1", daemon.port, config)
            assert report.errors == 0
            assert report.connections_opened >= 1
            # An open-loop burst over one pooled client reuses sockets:
            # strictly fewer opens than requests (establish + teardown
            # per admitted session).  How many depends on how the burst
            # interleaves, so only the reuse itself is asserted.
            requests = report.sessions + report.torn_down
            assert report.connection_reuses > 0
            assert report.connections_opened < requests
            assert report.connections_opened + report.connection_reuses == requests
            document = report.to_dict()
            assert document["connections_opened"] == report.connections_opened
            assert document["connection_reuses"] == report.connection_reuses
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())
