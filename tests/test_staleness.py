"""Tests for the §5.2.4 stale-observation model."""

import numpy as np
import pytest

from repro.sim.staleness import StaleObservationModel


class TestStaleObservationModel:
    def test_disabled_when_zero(self):
        model = StaleObservationModel(0.0, np.random.default_rng(0), clock=lambda: 100.0)
        assert not model.enabled
        assert model.schedule_for_session() is None

    def test_negative_rejected(self):
        with pytest.raises(Exception):
            StaleObservationModel(-1.0, np.random.default_rng(0), clock=lambda: 0.0)

    def test_observation_within_window(self):
        now = 100.0
        model = StaleObservationModel(8.0, np.random.default_rng(1), clock=lambda: now)
        schedule = model.schedule_for_session()
        for rid in ("a", "b", "c"):
            when = schedule(rid)
            assert now - 8.0 <= when <= now

    def test_consistent_within_session(self):
        model = StaleObservationModel(8.0, np.random.default_rng(2), clock=lambda: 50.0)
        schedule = model.schedule_for_session()
        assert schedule("x") == schedule("x")

    def test_independent_across_sessions_and_resources(self):
        model = StaleObservationModel(8.0, np.random.default_rng(3), clock=lambda: 50.0)
        s1, s2 = model.schedule_for_session(), model.schedule_for_session()
        draws = {s1("x"), s1("y"), s2("x"), s2("y")}
        assert len(draws) == 4  # almost surely distinct

    def test_clamped_at_time_zero(self):
        model = StaleObservationModel(8.0, np.random.default_rng(4), clock=lambda: 1.0)
        schedule = model.schedule_for_session()
        for rid in "abcdefgh":
            assert schedule(rid) >= 0.0
