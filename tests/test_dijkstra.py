"""Tests for the minimax path search, incl. brute-force cross-checks."""

import itertools
import math

import numpy as np
import pytest

from repro.core import enumerate_paths, minimax_dijkstra, path_bottleneck


def adjacency(edges):
    """edges: dict[(u, v)] = weight -> successors oracle."""
    table = {}
    for (u, v), w in edges.items():
        table.setdefault(u, []).append((v, w, (u, v)))
    return lambda node: table.get(node, [])


class TestMinimaxDijkstra:
    def test_trivial_source(self):
        result = minimax_dijkstra("s", adjacency({}))
        assert result.distance == {"s": 0.0}
        assert result.path_to("s") == ["s"]

    def test_single_edge(self):
        result = minimax_dijkstra("s", adjacency({("s", "t"): 0.5}))
        assert result.distance["t"] == 0.5
        assert result.path_to("t") == ["s", "t"]
        assert result.edges_to("t") == [("s", "t")]

    def test_bottleneck_not_sum(self):
        # sum would prefer the two-hop 0.3+0.3; minimax prefers max=0.4? no:
        # path A: s->a->t with weights 0.3, 0.3 => bottleneck 0.3
        # path B: s->t with weight 0.4         => bottleneck 0.4
        edges = {("s", "a"): 0.3, ("a", "t"): 0.3, ("s", "t"): 0.4}
        result = minimax_dijkstra("s", adjacency(edges))
        assert result.distance["t"] == pytest.approx(0.3)
        assert result.path_to("t") == ["s", "a", "t"]

    def test_unreachable_node(self):
        result = minimax_dijkstra("s", adjacency({("s", "a"): 0.1}))
        assert not result.reachable("z")
        with pytest.raises(KeyError):
            result.path_to("z")

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            minimax_dijkstra("s", adjacency({("s", "t"): -0.1}))

    def test_tie_break_prefers_smaller_incoming_edge(self):
        # Both predecessors give max(a, w) = 0.5 (their own dist is 0.5);
        # the tie-break must pick the smaller final edge weight (paper rule).
        edges = {
            ("s", "a"): 0.5,
            ("s", "b"): 0.5,
            ("a", "t"): 0.2,
            ("b", "t"): 0.4,
        }
        result = minimax_dijkstra("s", adjacency(edges), tie_break=True)
        assert result.distance["t"] == 0.5
        assert result.path_to("t")[1] == "a"

    def test_tie_break_disabled_keeps_first(self):
        edges = {
            ("s", "a"): 0.5,
            ("s", "b"): 0.5,
            ("a", "t"): 0.4,
            ("b", "t"): 0.2,
        }
        result = minimax_dijkstra("s", adjacency(edges), tie_break=False)
        # first relaxation wins: whichever of a/b is expanded first (a: counter order)
        assert result.distance["t"] == 0.5

    def test_matches_brute_force_on_random_dags(self):
        rng = np.random.default_rng(42)
        for _trial in range(40):
            n = int(rng.integers(4, 9))
            nodes = list(range(n))
            edges = {}
            for u, v in itertools.combinations(nodes, 2):
                if rng.random() < 0.5:
                    edges[(u, v)] = float(rng.uniform(0, 1))
            oracle = adjacency(edges)
            result = minimax_dijkstra(0, oracle)
            for target in nodes[1:]:
                paths = enumerate_paths(0, target, oracle)
                if not paths:
                    assert not result.reachable(target)
                    continue
                best = min(path_bottleneck(p) for p in paths)
                assert result.distance[target] == pytest.approx(best), (
                    edges,
                    target,
                )

    def test_path_distance_consistency(self):
        rng = np.random.default_rng(7)
        nodes = list(range(8))
        edges = {}
        for u, v in itertools.combinations(nodes, 2):
            if rng.random() < 0.6:
                edges[(u, v)] = float(rng.uniform(0, 1))
        result = minimax_dijkstra(0, adjacency(edges))
        for target in nodes[1:]:
            if not result.reachable(target):
                continue
            path = result.path_to(target)
            hops = list(zip(path, path[1:]))
            assert max(edges[h] for h in hops) == pytest.approx(result.distance[target])


class TestEnumeratePaths:
    def test_enumerates_all_simple_paths(self):
        edges = {("s", "a"): 1, ("s", "b"): 2, ("a", "t"): 3, ("b", "t"): 4, ("a", "b"): 5}
        paths = enumerate_paths("s", "t", adjacency(edges))
        signatures = {tuple(n for n, _w, _e in p) for p in paths}
        assert signatures == {("a", "t"), ("b", "t"), ("a", "b", "t")}

    def test_no_paths(self):
        assert enumerate_paths("s", "t", adjacency({("s", "a"): 1})) == []

    def test_limit_guard(self):
        # complete layered graph with many paths
        edges = {}
        layers = [["s"]] + [[f"n{i}{j}" for j in range(3)] for i in range(5)] + [["t"]]
        for a, b in zip(layers, layers[1:]):
            for u in a:
                for v in b:
                    edges[(u, v)] = 0.1
        with pytest.raises(RuntimeError, match="more than"):
            enumerate_paths("s", "t", adjacency(edges), limit=10)

    def test_path_bottleneck_empty(self):
        assert path_bottleneck([]) == 0.0
