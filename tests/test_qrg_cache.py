"""QRG skeleton caching: cached construction == from-scratch construction.

The skeleton (nodes, equivalence edges, fan-in groups, priced
requirement vectors) depends only on (service, binding, source level);
only feasibility filtering and psi weights depend on the availability
snapshot.  These tests pin the contract: pricing a cached skeleton
against any snapshot yields exactly the graph ``build_qrg`` builds from
scratch -- including after explicit cache invalidation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import PlanningError
from repro.core.planner import BasicPlanner
from repro.core.qrg import (
    QRGSkeletonCache,
    build_qrg,
    build_skeleton,
    price_skeleton,
)
from repro.core.resources import (
    AvailabilitySnapshot,
    headroom_contention_index,
    log_contention_index,
    ratio_contention_index,
)
from repro.core.synthetic import random_availability, synthetic_chain, synthetic_diamond_dag


def qrg_fingerprint(qrg):
    """Everything observable about a constructed QRG, as plain data."""
    return (
        str(qrg.source_node),
        sorted((str(node), level.label) for node, level in qrg.nodes.items()),
        sorted(
            (
                str(edge.src),
                str(edge.dst),
                tuple(sorted(edge.requirement.items())),
                tuple(sorted(edge.bound.items())),
                edge.weight,
                edge.bottleneck_resource,
                edge.alpha,
                tuple(sorted((edge.per_resource or {}).items())),
            )
            for edge in qrg.intra_edges
        ),
        sorted((str(eq.src), str(eq.dst)) for eq in qrg.equiv_edges),
        sorted(
            (str(group.input_node), tuple(str(part) for part in group.parts))
            for group in qrg.fanin_groups
        ),
    )


@st.composite
def chain_with_snapshots(draw):
    """A synthetic chain plus several random availability snapshots."""
    k = draw(st.integers(min_value=2, max_value=4))
    q = draw(st.integers(min_value=2, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    service, binding, snapshot = synthetic_chain(k, q, rng=rng)
    n_snapshots = draw(st.integers(min_value=1, max_value=3))
    snapshots = [
        random_availability(snapshot, rng, low=1.0, high=60.0)
        for _ in range(n_snapshots)
    ]
    return service, binding, snapshots


class TestCachedEqualsFresh:
    @settings(max_examples=40, deadline=None)
    @given(chain_with_snapshots())
    def test_cached_skeleton_matches_scratch_build(self, case):
        service, binding, snapshots = case
        cache = QRGSkeletonCache()
        for snapshot in snapshots:
            fresh = build_qrg(service, binding, snapshot)
            cached = build_qrg(service, binding, snapshot, skeleton_cache=cache)
            assert qrg_fingerprint(cached) == qrg_fingerprint(fresh)

    @settings(max_examples=40, deadline=None)
    @given(chain_with_snapshots())
    def test_invalidation_forces_identical_rebuild(self, case):
        service, binding, snapshots = case
        cache = QRGSkeletonCache()
        before = [
            qrg_fingerprint(build_qrg(service, binding, s, skeleton_cache=cache))
            for s in snapshots
        ]
        dropped = cache.invalidate()
        assert dropped >= 1
        assert len(cache) == 0
        after = [
            qrg_fingerprint(build_qrg(service, binding, s, skeleton_cache=cache))
            for s in snapshots
        ]
        assert after == before

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=2, max_value=3),
        st.integers(min_value=2, max_value=3),
        st.integers(min_value=0, max_value=2**16),
    )
    def test_diamond_dag_matches_scratch_build(self, branches, q, seed):
        rng = np.random.default_rng(seed)
        service, binding, snapshot = synthetic_diamond_dag(branches, q, rng=rng)
        snapshot = random_availability(snapshot, rng, low=2.0, high=80.0)
        cache = QRGSkeletonCache()
        fresh = build_qrg(service, binding, snapshot)
        cached = build_qrg(service, binding, snapshot, skeleton_cache=cache)
        assert qrg_fingerprint(cached) == qrg_fingerprint(fresh)

    def test_plans_agree_on_cached_graph(self):
        rng = np.random.default_rng(11)
        service, binding, snapshot = synthetic_chain(3, 3, rng=rng)
        snapshot = random_availability(snapshot, rng, low=5.0, high=80.0)
        cache = QRGSkeletonCache()
        planner = BasicPlanner()
        fresh_plan = planner.plan(build_qrg(service, binding, snapshot))
        cached_plan = planner.plan(build_qrg(service, binding, snapshot, skeleton_cache=cache))
        assert (fresh_plan is None) == (cached_plan is None)
        if fresh_plan is not None:
            assert cached_plan.end_to_end_label == fresh_plan.end_to_end_label
            assert cached_plan.psi == pytest.approx(fresh_plan.psi)


class TestCacheBookkeeping:
    def test_hit_miss_counters(self):
        service, binding, snapshot = synthetic_chain(2, 2)
        cache = QRGSkeletonCache()
        build_qrg(service, binding, snapshot, skeleton_cache=cache)
        build_qrg(service, binding, snapshot, skeleton_cache=cache)
        build_qrg(service, binding, snapshot, skeleton_cache=cache)
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 2
        assert len(cache) == 1

    def test_selective_invalidation_by_service_name(self):
        service_a, binding_a, snapshot_a = synthetic_chain(2, 2)
        rng = np.random.default_rng(3)
        service_b, binding_b, snapshot_b = synthetic_diamond_dag(2, 2, rng=rng)
        cache = QRGSkeletonCache()
        build_qrg(service_a, binding_a, snapshot_a, skeleton_cache=cache)
        build_qrg(service_b, binding_b, snapshot_b, skeleton_cache=cache)
        assert len(cache) == 2
        assert cache.invalidate(service_a.name) == 1
        assert len(cache) == 1
        # The survivor still prices correctly.
        fresh = build_qrg(service_b, binding_b, snapshot_b)
        cached = build_qrg(service_b, binding_b, snapshot_b, skeleton_cache=cache)
        assert qrg_fingerprint(cached) == qrg_fingerprint(fresh)

    def test_invalidation_by_resource_drops_only_bound_skeletons(self):
        service_a, binding_a, snapshot_a = synthetic_chain(2, 2)
        rng = np.random.default_rng(3)
        service_b, binding_b, snapshot_b = synthetic_diamond_dag(2, 2, rng=rng)
        cache = QRGSkeletonCache()
        build_qrg(service_a, binding_a, snapshot_a, skeleton_cache=cache)
        build_qrg(service_b, binding_b, snapshot_b, skeleton_cache=cache)
        assert len(cache) == 2
        doomed = sorted(binding_a.resource_ids())[:1]
        assert cache.invalidate_resources(doomed) == 1
        assert len(cache) == 1
        # The survivor is untouched: pricing it is a cache hit and
        # matches a from-scratch build.
        hits_before = cache.hits
        fresh = build_qrg(service_b, binding_b, snapshot_b)
        cached = build_qrg(service_b, binding_b, snapshot_b, skeleton_cache=cache)
        assert cache.hits == hits_before + 1
        assert qrg_fingerprint(cached) == qrg_fingerprint(fresh)

    def test_invalidation_by_resource_ignores_unknown_and_empty(self):
        service, binding, snapshot = synthetic_chain(2, 2)
        cache = QRGSkeletonCache()
        build_qrg(service, binding, snapshot, skeleton_cache=cache)
        assert cache.invalidate_resources([]) == 0
        assert cache.invalidate_resources(["no-such-resource"]) == 0
        assert len(cache) == 1

    def test_missing_resource_error_matches_scratch_build(self):
        service, binding, _snapshot = synthetic_chain(2, 2)
        empty = AvailabilitySnapshot.from_amounts({})
        with pytest.raises(PlanningError) as fresh_err:
            build_qrg(service, binding, empty)
        cache = QRGSkeletonCache()
        with pytest.raises(PlanningError) as cached_err:
            build_qrg(service, binding, empty, skeleton_cache=cache)
        assert str(cached_err.value) == str(fresh_err.value)

    def test_price_skeleton_composes_with_build_skeleton(self):
        service, binding, snapshot = synthetic_chain(3, 2)
        skeleton = build_skeleton(service, binding)
        qrg = price_skeleton(skeleton, snapshot)
        assert qrg_fingerprint(qrg) == qrg_fingerprint(build_qrg(service, binding, snapshot))


class TestVectorizedPricingIdentity:
    """Forced numpy pricing == the scalar reference loop, bit for bit.

    The scalar loop is the executable spec; the vectorized pass is a
    pure optimisation and must never change a weight, a bottleneck
    choice, or the set of surviving edges.
    """

    INDICES = {
        "ratio": ratio_contention_index,
        "headroom": headroom_contention_index,
        "log": log_contention_index,
    }

    @settings(max_examples=30, deadline=None)
    @given(chain_with_snapshots(), st.sampled_from(sorted(INDICES)))
    def test_vector_matches_scalar_for_every_index(self, case, index_name):
        service, binding, snapshots = case
        skeleton = build_skeleton(service, binding)
        index = self.INDICES[index_name]
        for snapshot in snapshots:
            scalar = price_skeleton(
                skeleton, snapshot, contention_index=index, vectorize=False
            )
            vector = price_skeleton(
                skeleton, snapshot, contention_index=index, vectorize=True
            )
            assert qrg_fingerprint(vector) == qrg_fingerprint(scalar)

    @settings(max_examples=20, deadline=None)
    @given(chain_with_snapshots())
    def test_adaptive_dispatch_matches_forced_paths(self, case):
        service, binding, snapshots = case
        skeleton = build_skeleton(service, binding)
        for snapshot in snapshots:
            default = price_skeleton(skeleton, snapshot)
            forced_scalar = price_skeleton(skeleton, snapshot, vectorize=False)
            assert qrg_fingerprint(default) == qrg_fingerprint(forced_scalar)

    def test_log_index_has_no_registered_kernel(self):
        # np.log1p and math.log1p differ in the last ulp on some
        # platforms, so the log index must stay on the scalar loop even
        # when vectorize=True is requested (the dispatch falls back).
        from repro.core.qrg import _VECTOR_KERNELS

        assert log_contention_index not in _VECTOR_KERNELS
        assert ratio_contention_index in _VECTOR_KERNELS
        assert headroom_contention_index in _VECTOR_KERNELS

    def test_missing_resource_error_identical_under_vectorize(self):
        service, binding, snapshot = synthetic_chain(3, 2)
        skeleton = build_skeleton(service, binding)
        resource_ids = sorted(binding.resource_ids())
        partial = AvailabilitySnapshot.from_amounts(
            {
                rid: snapshot[rid].available
                for rid in resource_ids[:-1]
            }
        )
        with pytest.raises(PlanningError) as scalar_err:
            price_skeleton(skeleton, partial, vectorize=False)
        with pytest.raises(PlanningError) as vector_err:
            price_skeleton(skeleton, partial, vectorize=True)
        assert str(vector_err.value) == str(scalar_err.value)
        assert resource_ids[-1] in str(vector_err.value)

    def test_infeasible_edges_filtered_identically(self):
        service, binding, snapshot = synthetic_chain(3, 3)
        rng = np.random.default_rng(3)
        # Starve the snapshot so a nontrivial subset of edges fails the
        # feasibility filter on both paths.
        starved = random_availability(snapshot, rng, low=0.01, high=2.0)
        skeleton = build_skeleton(service, binding)
        scalar = price_skeleton(skeleton, starved, vectorize=False)
        vector = price_skeleton(skeleton, starved, vectorize=True)
        assert len(scalar.intra_edges) < len(skeleton.edge_templates)
        assert qrg_fingerprint(vector) == qrg_fingerprint(scalar)
