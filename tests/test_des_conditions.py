"""Edge cases for composite events and failure propagation."""

import pytest

from repro.des import AllOf, AnyOf, Environment


class TestFailurePropagation:
    def test_all_of_fails_if_member_fails(self):
        env = Environment()

        def failing(env):
            yield env.timeout(1)
            raise ValueError("member died")

        def waiter(env):
            try:
                yield env.all_of([env.timeout(5), env.process(failing(env))])
            except ValueError as exc:
                return f"caught {exc}"

        process = env.process(waiter(env))
        env.run()
        assert process.value == "caught member died"

    def test_any_of_success_beats_later_failure(self):
        env = Environment()

        def failing(env):
            yield env.timeout(10)
            raise ValueError("too late to matter")

        def waiter(env):
            target = env.process(failing(env))
            result = yield env.any_of([env.timeout(1, "quick"), target])
            # prevent the pending failure from crashing the run
            target.defuse()
            return list(result.values())

        process = env.process(waiter(env))
        env.run()
        assert process.value == ["quick"]

    def test_condition_with_already_processed_events(self):
        env = Environment()
        early = env.timeout(1, "early")
        env.run(until=2.0)
        assert early.processed

        def waiter(env):
            result = yield env.all_of([early, env.timeout(1, "late")])
            return sorted(result.values())

        process = env.process(waiter(env))
        env.run()
        assert process.value == ["early", "late"]


class TestNesting:
    def test_nested_conditions(self):
        env = Environment()

        def waiter(env):
            inner = env.any_of([env.timeout(3, "a"), env.timeout(9, "b")])
            outer = env.all_of([inner, env.timeout(5, "c")])
            yield outer
            return env.now

        process = env.process(waiter(env))
        env.run()
        assert process.value == 5.0

    def test_condition_value_types(self):
        env = Environment()

        def waiter(env):
            t1, t2 = env.timeout(1, "x"), env.timeout(2, "y")
            result = yield AllOf(env, [t1, t2])
            assert result[t1] == "x" and result[t2] == "y"
            return True

        process = env.process(waiter(env))
        env.run()
        assert process.value is True

    def test_any_of_alias(self):
        env = Environment()

        def waiter(env):
            result = yield AnyOf(env, [env.timeout(1, "v")])
            return list(result.values())

        process = env.process(waiter(env))
        env.run()
        assert process.value == ["v"]
