"""Tests for the blocking Container pool."""

import pytest

from repro.des import Container, ContainerError, Environment


class TestValidation:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ContainerError):
            Container(Environment(), capacity=0)

    def test_init_within_bounds(self):
        with pytest.raises(ContainerError):
            Container(Environment(), capacity=10, init=11)
        with pytest.raises(ContainerError):
            Container(Environment(), capacity=10, init=-1)

    def test_get_amount_positive(self):
        pool = Container(Environment(), capacity=10, init=10)
        with pytest.raises(ContainerError):
            pool.get(0)

    def test_get_beyond_capacity_rejected_eagerly(self):
        pool = Container(Environment(), capacity=10, init=10)
        with pytest.raises(ContainerError):
            pool.get(11)

    def test_put_beyond_capacity_rejected_eagerly(self):
        pool = Container(Environment(), capacity=10)
        with pytest.raises(ContainerError):
            pool.put(11)


class TestSemantics:
    def test_immediate_get_when_available(self):
        env = Environment()
        pool = Container(env, capacity=100, init=50)

        def proc(env):
            yield pool.get(30)
            return pool.level

        process = env.process(proc(env))
        assert env.run(until=process) == 20.0

    def test_get_blocks_until_put(self):
        env = Environment()
        pool = Container(env, capacity=100, init=0)
        log = []

        def getter(env):
            yield pool.get(10)
            log.append(("got", env.now))

        def putter(env):
            yield env.timeout(5)
            yield pool.put(10)

        env.process(getter(env))
        env.process(putter(env))
        env.run()
        assert log == [("got", 5.0)]

    def test_put_blocks_when_full(self):
        env = Environment()
        pool = Container(env, capacity=10, init=10)
        log = []

        def putter(env):
            yield pool.put(5)
            log.append(("put", env.now))

        def getter(env):
            yield env.timeout(3)
            yield pool.get(5)

        env.process(putter(env))
        env.process(getter(env))
        env.run()
        assert log == [("put", 3.0)]

    def test_fifo_no_overtaking(self):
        env = Environment()
        pool = Container(env, capacity=100, init=0)
        order = []

        def getter(env, name, amount):
            yield pool.get(amount)
            order.append(name)

        # big request first; the small one behind it must not overtake
        env.process(getter(env, "big", 50))
        env.process(getter(env, "small", 5))

        def putter(env):
            yield env.timeout(1)
            yield pool.put(10)  # enough for small, not big
            yield env.timeout(1)
            yield pool.put(45)  # now big fits, then small

        env.process(putter(env))
        env.run()
        assert order == ["big", "small"]

    def test_try_get_success_and_failure(self):
        env = Environment()
        pool = Container(env, capacity=10, init=6)
        assert pool.try_get(4) is True
        assert pool.level == 2.0
        assert pool.try_get(4) is False
        assert pool.level == 2.0  # untouched on failure

    def test_try_get_wakes_putters(self):
        env = Environment()
        pool = Container(env, capacity=10, init=10)
        done = []

        def putter(env):
            yield pool.put(5)
            done.append(env.now)

        env.process(putter(env))
        env.run()
        assert done == []  # full: blocked
        assert pool.try_get(5) is True
        env.run()
        assert done == [0.0]
        assert pool.level == 10.0
