"""Batched planning == the sequential reference loop, byte for byte.

:meth:`ReservationCoordinator.establish_batch` prices each distinct
(service, demand_scale, source_label, binding) group once and lets
deterministic planners plan each priced QRG once, but its observable
behaviour -- results, causal events (including order), counters, and
broker end-state -- must be exactly what the sequential loop

    shared = coordinator._collect_batch_snapshot(requests, observed_at)
    [coordinator.establish(..., snapshot=shared) for r in requests]

produces.  These property tests pin that contract over random arrival
sets on the figure-9 grid, for every planner.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BasicPlanner, RandomPlanner, TradeoffPlanner
from repro.core.errors import ModelError
from repro.des import Environment, RandomStreams
from repro.obs.events import EventLog, event_logging
from repro.obs.metrics import MetricsRegistry, metering
from repro.runtime import SessionRequest
from repro.sim.environment import GridEnvironment


def fresh_grid(seed: int = 7) -> GridEnvironment:
    return GridEnvironment(Environment(), RandomStreams(seed))


def _valid_pairs():
    """Every (service, domain) pair the §5.1 exclusion rule allows."""
    grid = fresh_grid()
    pairs = []
    for service in sorted(grid.services):
        for domain in sorted(grid.topology.domains):
            try:
                grid.binding_for(service, domain)
            except ModelError:
                continue
            pairs.append((service, domain))
    return pairs


VALID_PAIRS = _valid_pairs()


def requests_for(grid, picks, demand_scale=1.0):
    return [
        SessionRequest(
            session_id=f"s{index:03d}",
            service_name=service,
            binding=grid.binding_for(service, domain),
            component_hosts=grid.component_hosts_for(service, domain),
            demand_scale=demand_scale,
        )
        for index, (service, domain) in enumerate(picks)
    ]


def event_view(log):
    """Everything deterministic about the event stream (wall excluded)."""
    return [
        (e.seq, e.kind, e.session, e.resource, e.time, e.attributes)
        for e in log.records
    ]


def broker_state(grid):
    return {rid: grid.registry.broker(rid).available for rid in grid.resource_ids()}


def run_batched(grid_seed, picks, make_planner, demand_scale=1.0):
    grid = fresh_grid(grid_seed)
    requests = requests_for(grid, picks, demand_scale)
    log, registry = EventLog(), MetricsRegistry()
    with event_logging(log), metering(registry):
        results = grid.coordinator.establish_batch(requests, make_planner())
    return results, event_view(log), registry.snapshot()["counters"], broker_state(grid)


def run_sequential(grid_seed, picks, make_planner, demand_scale=1.0):
    grid = fresh_grid(grid_seed)
    requests = requests_for(grid, picks, demand_scale)
    log, registry = EventLog(), MetricsRegistry()
    planner = make_planner()
    with event_logging(log), metering(registry):
        shared = grid.coordinator._collect_batch_snapshot(requests, None)
        results = [
            grid.coordinator.establish(
                r.session_id,
                r.service_name,
                r.binding,
                planner,
                component_hosts=r.component_hosts,
                source_label=r.source_label,
                demand_scale=r.demand_scale,
                snapshot=shared,
            )
            for r in requests
        ]
    return results, event_view(log), registry.snapshot()["counters"], broker_state(grid)


def comparable_counters(counters):
    """Counters that describe behaviour, not work saved.

    The skeleton-cache hit/miss counters are *supposed* to differ --
    pricing each group once instead of once per session is the whole
    point of the batch path -- so they are excluded from the identity
    check.  Everything else (admissions, rejections, backoffs, broker
    traffic) must match exactly.
    """
    return {
        name: value
        for name, value in counters.items()
        if not name.startswith("qrg.skeleton_cache")
    }


def assert_identical(batched, sequential):
    b_results, b_events, b_counters, b_brokers = batched
    s_results, s_events, s_counters, s_brokers = sequential
    assert b_results == s_results
    assert b_events == s_events
    assert comparable_counters(b_counters) == comparable_counters(s_counters)
    assert b_brokers == s_brokers


PLANNERS = {
    "basic": BasicPlanner,
    "tradeoff": TradeoffPlanner,
}

arrival_sets = st.lists(
    st.sampled_from(VALID_PAIRS), min_size=1, max_size=10
)


class TestEstablishBatchIdentity:
    @settings(max_examples=25, deadline=None)
    @given(
        picks=arrival_sets,
        grid_seed=st.integers(min_value=0, max_value=2**16),
        planner_name=st.sampled_from(sorted(PLANNERS)),
    )
    def test_matches_sequential_loop(self, picks, grid_seed, planner_name):
        make_planner = PLANNERS[planner_name]
        assert_identical(
            run_batched(grid_seed, picks, make_planner),
            run_sequential(grid_seed, picks, make_planner),
        )

    @settings(max_examples=10, deadline=None)
    @given(
        picks=arrival_sets,
        rng_seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_random_planner_matches_with_identical_seed(self, picks, rng_seed):
        # RandomPlanner is non-deterministic so the memo bypasses it; a
        # fresh, identically-seeded instance per run is the fair
        # comparison (both sides consume the rng in request order).
        assert_identical(
            run_batched(7, picks, lambda: RandomPlanner(rng=np.random.default_rng(rng_seed))),
            run_sequential(7, picks, lambda: RandomPlanner(rng=np.random.default_rng(rng_seed))),
        )

    def test_fat_sessions_exhaust_capacity_identically(self):
        # Oversubscribe on purpose: later sessions must see earlier
        # admissions and fail at exactly the same points on both paths.
        picks = [VALID_PAIRS[0]] * 8 + VALID_PAIRS[:4]
        batched = run_batched(7, picks, TradeoffPlanner, demand_scale=40.0)
        sequential = run_sequential(7, picks, TradeoffPlanner, demand_scale=40.0)
        assert_identical(batched, sequential)
        outcomes = [r.success for r in batched[0]]
        assert not all(outcomes), "oversubscription should reject some sessions"
        assert any(outcomes), "some sessions should still be admitted"

    def test_empty_batch(self):
        grid = fresh_grid()
        assert grid.coordinator.establish_batch([], BasicPlanner()) == []


class TestPlanBatchAlignment:
    @settings(max_examples=15, deadline=None)
    @given(
        picks=arrival_sets,
        planner_name=st.sampled_from(sorted(PLANNERS)),
    )
    def test_plans_align_with_per_session_planning(self, picks, planner_name):
        make_planner = PLANNERS[planner_name]
        grid = fresh_grid()
        requests = requests_for(grid, picks)
        shared = grid.coordinator._collect_batch_snapshot(requests, None)
        batch_plans = grid.coordinator.plan_batch(
            requests, make_planner(), snapshot=shared
        )
        assert len(batch_plans) == len(requests)
        planner = make_planner()
        for request, plan in zip(requests, batch_plans):
            result = fresh_grid().coordinator.establish(
                request.session_id,
                request.service_name,
                request.binding,
                planner,
                component_hosts=request.component_hosts,
                demand_scale=request.demand_scale,
            )
            if plan is None:
                assert not result.success
            else:
                assert result.success
                assert result.plan.assignments == plan.assignments
                assert result.plan.psi == plan.psi

    def test_planning_only_reserves_nothing_and_emits_no_session_events(self):
        grid = fresh_grid()
        requests = requests_for(grid, VALID_PAIRS[:4])
        before = broker_state(grid)
        log = EventLog()
        with event_logging(log):
            plans = grid.coordinator.plan_batch(requests, BasicPlanner())
        assert any(plan is not None for plan in plans)
        assert broker_state(grid) == before
        assert not any(e.kind.startswith("session.") for e in log.records)


class TestFaultTolerantDelegation:
    def test_zero_injector_delegates_to_batched_path(self):
        from repro.faults import FaultInjector, FaultTolerantCoordinator

        grid = fresh_grid()
        ft = FaultTolerantCoordinator(
            grid.registry,
            grid.model_store,
            grid.proxies,
            injector=FaultInjector.disabled(),
        )
        requests = requests_for(grid, VALID_PAIRS[:6])
        results = ft.establish_batch(requests, BasicPlanner())

        reference = run_sequential(7, VALID_PAIRS[:6], BasicPlanner)
        assert [r.success for r in results] == [r.success for r in reference[0]]
        assert [r.qos_level for r in results] == [
            r.qos_level for r in reference[0]
        ]
