"""Tests for QoS-Resource Graph construction (paper §4.1.1)."""

import pytest

from repro.core import (
    AvailabilitySnapshot,
    Binding,
    PlanningError,
    QRGNode,
    ResourceObservation,
    build_qrg,
    headroom_contention_index,
)
from repro.core.qrg import QoSResourceGraph


class TestConstruction:
    def test_nodes_cover_all_levels(self, small_service, small_binding, ample_snapshot):
        qrg = build_qrg(small_service, small_binding, ample_snapshot)
        labels = {(n.component, n.kind, n.label) for n in qrg.nodes}
        assert ("c1", "in", "Qa") in labels
        assert ("c1", "out", "Qb") in labels and ("c1", "out", "Qc") in labels
        assert ("c2", "in", "Qd") in labels and ("c2", "in", "Qe") in labels
        assert ("c2", "out", "Qf") in labels and ("c2", "out", "Qg") in labels
        assert qrg.source_node == QRGNode("c1", "in", "Qa")

    def test_all_feasible_edges_present(self, small_service, small_binding, ample_snapshot):
        qrg = build_qrg(small_service, small_binding, ample_snapshot)
        # 2 c1 edges + 4 c2 edges, 2 equivalence edges
        assert len(qrg.intra_edges) == 6
        assert len(qrg.equiv_edges) == 2
        assert qrg.count_edges() == 8
        assert qrg.count_nodes() == 7

    def test_edge_weights_follow_eq2_eq3(self, small_service, small_binding, ample_snapshot):
        qrg = build_qrg(small_service, small_binding, ample_snapshot)
        edge = qrg.edge_between(QRGNode("c1", "in", "Qa"), QRGNode("c1", "out", "Qb"))
        assert edge is not None
        assert edge.weight == pytest.approx(10 / 100)
        assert edge.bottleneck_resource == "cpu:H1"
        assert edge.bound["cpu:H1"] == 10

    def test_infeasible_pairs_dropped(self, small_service, small_binding):
        snapshot = AvailabilitySnapshot.from_amounts({"cpu:H1": 100, "net:L1": 15})
        qrg = build_qrg(small_service, small_binding, snapshot)
        # (Qd,Qf)=20 and (Qe,Qf)=40 exceed 15: both dropped
        assert qrg.edge_between(QRGNode("c2", "in", "Qd"), QRGNode("c2", "out", "Qf")) is None
        assert qrg.edge_between(QRGNode("c2", "in", "Qe"), QRGNode("c2", "out", "Qf")) is None
        assert qrg.edge_between(QRGNode("c2", "in", "Qd"), QRGNode("c2", "out", "Qg")) is not None

    def test_every_edge_satisfiable_invariant(self, small_service, small_binding):
        snapshot = AvailabilitySnapshot.from_amounts({"cpu:H1": 7, "net:L1": 15})
        qrg = build_qrg(small_service, small_binding, snapshot)
        availability = snapshot.availability()
        for edge in qrg.intra_edges:
            assert edge.bound.satisfiable_under(availability)
            assert edge.weight <= 1.0

    def test_equivalence_edges_carry_zero_weight(self, small_service, small_binding, ample_snapshot):
        qrg = build_qrg(small_service, small_binding, ample_snapshot)
        for _node, weight, edge in qrg.successors(QRGNode("c1", "out", "Qb")):
            assert weight == 0.0 and edge is None

    def test_missing_resource_raises(self, small_service, small_binding):
        snapshot = AvailabilitySnapshot.from_amounts({"cpu:H1": 100})
        with pytest.raises(PlanningError, match="net:L1"):
            build_qrg(small_service, small_binding, snapshot)

    def test_alpha_recorded_from_snapshot(self, small_service, small_binding):
        snapshot = AvailabilitySnapshot(
            {
                "cpu:H1": ResourceObservation(available=100, alpha=0.5),
                "net:L1": ResourceObservation(available=100, alpha=1.2),
            }
        )
        qrg = build_qrg(small_service, small_binding, snapshot)
        edge = qrg.edge_between(QRGNode("c1", "in", "Qa"), QRGNode("c1", "out", "Qb"))
        assert edge.alpha == 0.5

    def test_custom_contention_index(self, small_service, small_binding, ample_snapshot):
        qrg = build_qrg(
            small_service,
            small_binding,
            ample_snapshot,
            contention_index=headroom_contention_index,
        )
        edge = qrg.edge_between(QRGNode("c1", "in", "Qa"), QRGNode("c1", "out", "Qb"))
        assert edge.weight == pytest.approx(10 / 90)

    def test_source_label_selection(self, small_service, small_binding, ample_snapshot):
        qrg = build_qrg(
            small_service, small_binding, ample_snapshot, source_label="Qa"
        )
        assert qrg.source_node.label == "Qa"
        with pytest.raises(Exception):
            build_qrg(small_service, small_binding, ample_snapshot, source_label="Qz")

    def test_sink_nodes(self, small_service, small_binding, ample_snapshot):
        qrg = build_qrg(small_service, small_binding, ample_snapshot)
        assert {n.label for n in qrg.sink_nodes()} == {"Qf", "Qg"}


class TestQRGNode:
    def test_kind_validated(self):
        with pytest.raises(Exception):
            QRGNode("c", "sideways", "Q")

    def test_str(self):
        assert str(QRGNode("c1", "in", "Qa")) == "c1.in:Qa"

    def test_ordering_is_stable(self):
        a = QRGNode("c1", "in", "Qa")
        b = QRGNode("c1", "out", "Qa")
        assert a < b  # "in" < "out"
