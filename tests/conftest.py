"""Shared fixtures: a small two-component chain service and helpers."""

from __future__ import annotations

import pytest

from repro.core import (
    AvailabilitySnapshot,
    Binding,
    DependencyGraph,
    DistributedService,
    QoSLevel,
    QoSRanking,
    QoSVector,
    ServiceComponent,
    TabularTranslation,
)


def level(label: str, **params) -> QoSLevel:
    return QoSLevel(label, QoSVector(params))


@pytest.fixture
def small_service() -> DistributedService:
    """c1 (source, cpu) -> c2 (sink, net), two end-to-end levels Qf > Qg.

    c2 supports trade-offs: producing Qf from the lower input Qe costs
    more network than from Qd (upscaling), and Qg is cheaper from Qe.
    """
    c1 = ServiceComponent(
        "c1",
        (level("Qa", q=3),),
        (level("Qb", q=2), level("Qc", q=1)),
        TabularTranslation({("Qa", "Qb"): {"cpu": 10}, ("Qa", "Qc"): {"cpu": 5}}),
    )
    c2 = ServiceComponent(
        "c2",
        (level("Qd", q=2), level("Qe", q=1)),
        (level("Qf", e=2), level("Qg", e=1)),
        TabularTranslation(
            {
                ("Qd", "Qf"): {"net": 20},
                ("Qe", "Qf"): {"net": 40},
                ("Qd", "Qg"): {"net": 12},
                ("Qe", "Qg"): {"net": 8},
            }
        ),
    )
    return DistributedService(
        "small", [c1, c2], DependencyGraph.chain(["c1", "c2"]), QoSRanking(["Qf", "Qg"])
    )


@pytest.fixture
def small_binding() -> Binding:
    return Binding({("c1", "cpu"): "cpu:H1", ("c2", "net"): "net:L1"})


@pytest.fixture
def ample_snapshot() -> AvailabilitySnapshot:
    return AvailabilitySnapshot.from_amounts({"cpu:H1": 100.0, "net:L1": 100.0})
