"""Property: no seeded fault schedule can leak reserved capacity.

Hypothesis drives ~200 random ``(FaultConfig, seed)`` pairs through the
fault-tolerant coordinators — establishments, partial teardowns, orphan
reaping — and asserts the conservation invariant at every checkpoint
plus broker quiescence at the end.  A leak in either direction
(capacity a broker holds that no proxy will release, or a proxy
tracking capacity the broker already freed) fails the property.

Two coordinator flavours are covered: the centralized
:class:`FaultTolerantCoordinator` on the small rig and the distributed
:class:`FaultTolerantDistributedCoordinator` (§3 component fragments
priced host-side, dispatched through the same lease machinery).

The sessions run synchronously (the DES driver shares the same protocol
generator, exercised by the full-simulation tests in test_faults.py);
what varies here is the *fault schedule*, which is the quantity the
invariant must be robust against.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.brokers import (
    BrokerRegistry,
    LinkBandwidthBroker,
    LocalResourceBroker,
    PathBroker,
)
from repro.core import BasicPlanner
from repro.faults import (
    FAULT_SEED_INDEX,
    FaultConfig,
    FaultInjector,
    FaultPlan,
    FaultTolerantDistributedCoordinator,
    assert_capacity_conserved,
)
from repro.runtime import ComponentHost, ModelStore
from repro.sim.experiment import derive_run_seed

from tests.test_faults import build_ft_rig

rates = st.floats(min_value=0.0, max_value=0.6, allow_nan=False)
window_rates = st.floats(min_value=0.0, max_value=8.0, allow_nan=False)


@st.composite
def fault_configs(draw):
    return FaultConfig(
        drop_rate=draw(rates),
        stale_rate=draw(rates),
        crash_rate=draw(window_rates),
        crash_duration=draw(st.floats(min_value=1.0, max_value=40.0)),
        partition_rate=draw(window_rates),
        partition_duration=draw(st.floats(min_value=1.0, max_value=20.0)),
        max_retries=draw(st.integers(min_value=0, max_value=3)),
        max_replans=draw(st.integers(min_value=0, max_value=2)),
        lease_ttl=draw(st.floats(min_value=1.0, max_value=60.0)),
    )


class FakeClock:
    """A controllable clock so crash/partition windows actually bite."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(config=fault_configs(), seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_no_fault_schedule_leaks_capacity(small_service, small_binding, config, seed):
    clock = FakeClock()
    plan = FaultPlan.generate(
        config,
        seed=derive_run_seed(seed, FAULT_SEED_INDEX),
        horizon=120.0,
        hosts=("H1", "H2"),
    )
    injector = FaultInjector(plan, clock=clock)
    registry, coordinator, proxies = build_ft_rig(small_service, injector)

    established = []
    for n in range(10):
        clock.now = 12.0 * n  # walk through the fault windows
        result = coordinator.establish(f"s{n}", "small", small_binding, BasicPlanner())
        if result.success:
            established.append(f"s{n}")
        # The invariant must hold at every instant, including mid-run
        # with orphaned leases outstanding.
        assert_capacity_conserved(registry, proxies)
        if len(established) >= 2:  # churn: keep contention, free capacity
            coordinator.teardown(established.pop(0))
            assert_capacity_conserved(registry, proxies)

    for session_id in established:
        coordinator.teardown(session_id)
    coordinator.reap_orphans(force=True)
    assert_capacity_conserved(registry, proxies)
    registry.assert_quiescent()
    for proxy in proxies.values():
        for session_id in list(getattr(proxy, "_held", {})):
            assert proxy.held_for(session_id) == ()


def build_ft_distributed_rig(small_service, injector, clock):
    """The test_distributed rig behind the fault boundary: component
    definitions stored host-side, fragments priced there (§3)."""
    registry = BrokerRegistry()
    cpu = LocalResourceBroker("H1", "cpu", 100.0, clock=clock)
    link = LinkBandwidthBroker("L1", "H1", "H2", 100.0, clock=clock)
    path = PathBroker("net:L1", [link], clock=clock)
    for broker in (cpu, link, path):
        registry.register(broker)
    host1 = ComponentHost("H1", registry)
    host1.store_component(small_service.component("c1"))
    host2 = ComponentHost("H2", registry)
    host2.store_component(small_service.component("c2"))
    structure = ModelStore()
    structure.register(small_service)
    proxies = {"H1": host1, "H2": host2}
    coordinator = FaultTolerantDistributedCoordinator(
        registry, structure, proxies, injector=injector
    )
    return registry, coordinator, proxies


@settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(config=fault_configs(), seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_no_fault_schedule_leaks_capacity_distributed(
    small_service, small_binding, config, seed
):
    """The §3 fragment-dispatch path conserves capacity under any
    schedule, exactly like the centralized protocol."""
    clock = FakeClock()
    plan = FaultPlan.generate(
        config,
        seed=derive_run_seed(seed, FAULT_SEED_INDEX),
        horizon=120.0,
        hosts=("H1", "H2"),
    )
    injector = FaultInjector(plan, clock=clock)
    registry, coordinator, proxies = build_ft_distributed_rig(
        small_service, injector, clock
    )

    established = []
    for n in range(10):
        clock.now = 12.0 * n
        result = coordinator.establish(f"d{n}", "small", small_binding, BasicPlanner())
        if result.success:
            established.append(f"d{n}")
        assert_capacity_conserved(registry, proxies)
        if len(established) >= 2:
            coordinator.teardown(established.pop(0))
            assert_capacity_conserved(registry, proxies)

    for session_id in established:
        coordinator.teardown(session_id)
    coordinator.reap_orphans(force=True)
    assert_capacity_conserved(registry, proxies)
    registry.assert_quiescent()
    for proxy in proxies.values():
        for session_id in list(getattr(proxy, "_held", {})):
            assert proxy.held_for(session_id) == ()
