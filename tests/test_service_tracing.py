"""End-to-end tracing across the service boundary.

A client-bound trace context must ride the ``traceparent`` header into
the daemon, stamp every daemon-side span and event for that admission,
and come back out through the flight recorder so ``repro-obs stitch``
can join the two sides.  Malformed propagation must degrade to a fresh
root trace, never to an error; concurrent admissions must never bleed
into each other's traces.
"""

import asyncio
import json
import signal

import pytest

from repro.obs import analyze
from repro.obs import context as obs_context
from repro.service import DaemonConfig, ReservationDaemon, ServiceClient
from repro.service.cli import build_config
from repro.service.loadgen import LoadGenConfig, run_load
from repro.sim.workload import WorkloadSpec


async def start_daemon(**overrides) -> ReservationDaemon:
    overrides.setdefault("port", 0)
    daemon = ReservationDaemon(DaemonConfig(**overrides))
    await daemon.start()
    return daemon


# ---------------------------------------------------------------------------
# header propagation


def test_traceparent_propagates_to_daemon_events():
    async def scenario():
        daemon = await start_daemon(seed=3)
        try:
            client = ServiceClient("127.0.0.1", daemon.port)
            context = obs_context.new_trace_context(request_id="req-prop")
            with obs_context.trace_context(context):
                outcome = await client.establish(
                    service="S2", domain="D1", session_id="s-prop"
                )
            assert outcome["success"] is True
            # Every daemon-side event of the admission carries the
            # client's trace id and request id.
            stamped = daemon.service.log.for_trace(context.trace_id)
            assert stamped, "no daemon events carried the client trace id"
            assert {e.request_id for e in stamped} == {"req-prop"}
            assert any(e.kind == "session.admitted" for e in stamped)
            # ... and so do the flight recorder's spans.
            spans = daemon.service.flight.tracer.records_for_trace(
                context.trace_id
            )
            names = {record.name for record in spans}
            assert "daemon.establish" in names
            assert "establish" in names  # the coordinator's span
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())


def test_trace_ids_never_leak_into_response_bodies():
    async def scenario():
        daemon = await start_daemon(seed=3)
        try:
            client = ServiceClient("127.0.0.1", daemon.port)
            context = obs_context.new_trace_context(request_id="req-leak")
            with obs_context.trace_context(context):
                response = await client.request(
                    "POST",
                    "/v1/establish",
                    {"service": "S2", "domain": "D1", "session_id": "s-leak"},
                )
            assert response.status == 200
            assert context.trace_id not in response.body.decode("utf-8")
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())


@pytest.mark.parametrize(
    "header",
    [
        "garbage",
        "00-short-bad-01",
        "00-" + "0" * 32 + "-" + "1" * 16 + "-01",
        "00-" + "a" * 32 + "-" + "1" * 16,  # truncated
    ],
)
def test_malformed_traceparent_gets_fresh_root_not_500(header):
    async def scenario():
        daemon = await start_daemon(seed=3)
        try:
            client = ServiceClient("127.0.0.1", daemon.port)
            response = await client.request(
                "POST",
                "/v1/establish",
                {"service": "S2", "domain": "D1", "session_id": "s-mal"},
                headers={"traceparent": header, "x-request-id": "req-mal"},
            )
            assert response.status == 200
            # The daemon minted a fresh root: events are stamped with
            # *some* trace id, just not one derived from the bad header.
            stamped = [e for e in daemon.service.log.records if e.trace_id]
            assert stamped
            assert all(e.request_id == "req-mal" for e in stamped)
            if header.startswith("00-a"):
                assert all(e.trace_id != "a" * 32 for e in stamped)
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())


def test_batch_fan_out_shares_one_trace():
    async def scenario():
        daemon = await start_daemon(seed=3)
        try:
            client = ServiceClient("127.0.0.1", daemon.port)
            context = obs_context.new_trace_context(request_id="req-batch")
            arrivals = [
                {"session_id": f"b-{i}", "service": "S2", "domain": "D1"}
                for i in range(4)
            ]
            with obs_context.trace_context(context):
                outcomes = await client.establish_batch(arrivals)
            assert len(outcomes) == 4
            stamped = daemon.service.log.for_trace(context.trace_id)
            sessions = {e.session for e in stamped if e.session}
            # Every arrival's events came out of the fan-out with the
            # one batch trace id attached.
            assert {f"b-{i}" for i in range(4)} <= sessions
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())


def test_concurrent_admissions_never_share_a_trace():
    async def scenario():
        daemon = await start_daemon(seed=3)
        try:
            client = ServiceClient("127.0.0.1", daemon.port)
            contexts = {}

            async def admit(i):
                context = obs_context.new_trace_context(request_id=f"req-{i}")
                contexts[f"c-{i}"] = context
                with obs_context.trace_context(context):
                    await client.establish(
                        service="S2", domain="D1", session_id=f"c-{i}"
                    )

            await asyncio.gather(*(admit(i) for i in range(6)))
            # Each session's events carry exactly its own client's trace.
            for i in range(6):
                session = f"c-{i}"
                events = [
                    e for e in daemon.service.log.records if e.session == session
                ]
                assert events
                trace_ids = {e.trace_id for e in events}
                assert trace_ids == {contexts[session].trace_id}
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# phase histograms


def test_admission_phase_histograms_with_exemplars():
    async def scenario():
        daemon = await start_daemon(seed=3)
        try:
            client = ServiceClient("127.0.0.1", daemon.port)
            context = obs_context.new_trace_context(request_id="req-ph")
            with obs_context.trace_context(context):
                await client.establish(
                    service="S2", domain="D1", session_id="s-ph"
                )
            registry = daemon.service.registry
            for phase in ("parse", "queue_wait", "plan", "commit", "serialize"):
                histogram = registry.histogram(
                    "daemon.admission_phase_seconds", phase=phase
                )
                assert histogram.count == 1, phase
                assert histogram.exemplars, phase
                for _value, trace_id in histogram.exemplars.values():
                    assert trace_id == context.trace_id
            # Planning did real work, so plan time is non-zero.
            plan = registry.histogram(
                "daemon.admission_phase_seconds", phase="plan"
            )
            assert plan.sum > 0.0
            # Exemplars surface in the exposition as comment lines that
            # classic Prometheus parsers skip.
            text = await client.metrics()
            assert f"trace_id={context.trace_id}" in text
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# healthz + debug dump + access log


def test_healthz_reports_uptime_inflight_and_drain_state():
    async def scenario():
        daemon = await start_daemon(seed=3)
        try:
            client = ServiceClient("127.0.0.1", daemon.port)
            health = await client.healthz()
            assert health["status"] == "ok"
            assert health["draining"] is False
            assert health["uptime_seconds"] >= 0.0
            assert health["inflight_admissions"] == 0
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())


def test_debug_dump_endpoint_returns_snapshot_and_writes_file(tmp_path):
    async def scenario():
        daemon = await start_daemon(seed=3, flight_dir=str(tmp_path))
        try:
            client = ServiceClient("127.0.0.1", daemon.port)
            context = obs_context.new_trace_context(request_id="req-dump")
            with obs_context.trace_context(context):
                await client.establish(
                    service="S2", domain="D1", session_id="s-dump"
                )
            dump = await client._call("POST", "/v1/debug/dump")
            assert dump["path"] is not None
            document = dump["document"]
            assert document["schema_version"] == 4
            assert document["meta"]["reason"] == "debug_endpoint"
            assert any(
                e.get("trace_id") == context.trace_id
                for e in document["events"]
            )
            # The on-disk dump is a loadable trace document.
            on_disk = analyze.load_trace(dump["path"])
            assert on_disk.schema_version == 4
            assert any(e.trace_id == context.trace_id for e in on_disk.events)
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())


def test_debug_dump_without_flight_dir_is_in_band_only():
    async def scenario():
        daemon = await start_daemon(seed=3)
        try:
            client = ServiceClient("127.0.0.1", daemon.port)
            dump = await client._call("POST", "/v1/debug/dump")
            assert dump["path"] is None
            assert dump["document"]["schema_version"] == 4
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())


def test_access_log_lines_are_structured_json(capsys):
    async def scenario():
        daemon = await start_daemon(seed=3, access_log=True)
        try:
            client = ServiceClient("127.0.0.1", daemon.port)
            context = obs_context.new_trace_context(request_id="req-log")
            with obs_context.trace_context(context):
                await client.establish(
                    service="S2", domain="D1", session_id="s-log"
                )
            await client.healthz()
            return context
        finally:
            await daemon.shutdown()

    context = asyncio.run(scenario())
    lines = [
        json.loads(line)
        for line in capsys.readouterr().err.splitlines()
        if line.startswith("{")
    ]
    assert len(lines) == 2
    establish, health = lines
    assert establish["method"] == "POST"
    assert establish["path"] == "/v1/establish"
    assert establish["status"] == 200
    assert establish["duration_ms"] >= 0.0
    assert establish["trace_id"] == context.trace_id
    assert establish["request_id"] == "req-log"
    assert health["path"] == "/healthz"


# ---------------------------------------------------------------------------
# loadgen tracing + stitch (the acceptance gate, in-process)


def test_loadgen_trace_stitches_completely_against_flight_dump():
    async def scenario():
        daemon = await start_daemon(seed=3)
        try:
            config = LoadGenConfig(
                workload=WorkloadSpec(rate_per_60tu=400.0, horizon=6.0),
                seed=11,
                time_scale=0.001,
                max_hold_seconds=0.0,
                trace=True,
            )
            report = await run_load("127.0.0.1", daemon.port, config)
            assert report.sessions > 0 and report.errors == 0
            snapshot = daemon.service.flight_snapshot("test")
            return report, snapshot
        finally:
            await daemon.shutdown()

    report, snapshot = asyncio.run(scenario())
    client_doc = analyze.TraceDocument.from_dict(report.trace_document)
    daemon_doc = analyze.TraceDocument.from_dict(snapshot)
    stitched = analyze.stitch_traces(client_doc, daemon_doc)
    # The acceptance gate: every client request links to daemon-side
    # spans/events -- zero orphan client traces.
    assert stitched.complete, stitched.orphan_client
    assert len(stitched.timelines) == report.sessions
    for timeline in stitched.timelines:
        assert timeline.client_spans and timeline.daemon_events
        assert timeline.session is not None


def test_loadgen_without_tracing_has_no_document_and_no_headers():
    async def scenario():
        daemon = await start_daemon(seed=3)
        try:
            config = LoadGenConfig(
                workload=WorkloadSpec(rate_per_60tu=200.0, horizon=4.0),
                seed=11,
                time_scale=0.001,
                max_hold_seconds=0.0,
            )
            report = await run_load("127.0.0.1", daemon.port, config)
            assert report.trace_document is None
            # The daemon still mints fresh roots for unpropagated
            # requests, but request ids are its own counters -- proof no
            # client headers arrived.
            stamped = [e for e in daemon.service.log.records if e.request_id]
            assert stamped
            assert all(e.request_id.startswith("req-") for e in stamped)
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# flight recorder + CLI config


def test_flight_dump_files_are_sequenced(tmp_path):
    async def scenario():
        daemon = await start_daemon(seed=3, flight_dir=str(tmp_path))
        try:
            client = ServiceClient("127.0.0.1", daemon.port)
            await client.establish(service="S2", domain="D1", session_id="f-1")
            first = daemon.service.flight_dump("sigquit")
            second = daemon.service.flight_dump("sigquit")
            assert first != second
            assert first.name.startswith("flight-sigquit-")
            assert first.exists() and second.exists()
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())


def test_build_config_wires_tracing_flags(tmp_path):
    config = build_config(
        ["--access-log", "--flight-dir", str(tmp_path), "--port", "0"]
    )
    assert config.access_log is True
    assert config.flight_dir == str(tmp_path)
    assert signal.Signals  # SIGQUIT wiring is exercised in CI smoke


def test_event_plane_drops_surface_as_labelled_counter():
    async def scenario():
        daemon = await start_daemon(seed=3, subscriber_queue=2)
        try:
            client = ServiceClient("127.0.0.1", daemon.port)
            subscriber = daemon.service.plane.subscribe(queue_size=2)
            try:
                for i in range(8):
                    await client.establish(
                        service="S2", domain="D1", session_id=f"drop-{i}"
                    )
                registry = daemon.service.registry
                dropped = registry.counter_total("service.events_dropped")
                assert dropped > 0
                assert dropped == subscriber.total_dropped
                text = await client.metrics()
                assert "repro_service_events_dropped_total" in text
                assert 'reason="queue_full"' in text
            finally:
                daemon.service.plane.unsubscribe(subscriber)
        finally:
            await daemon.shutdown()

    asyncio.run(scenario())
