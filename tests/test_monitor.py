"""The online monitoring plane (repro.obs.monitor + repro.obs.slo).

Four contracts under test:

* **Pure-stream determinism** -- every estimator and detector is a
  function of the event stream alone (no broker access, no wall clock
  in the logic), so replaying a recorded stream reproduces the live
  monitor and serial/parallel sweeps yield byte-identical digests;
* **No self-feeding** -- the monitor ignores its own event kinds on
  input, so subscribing it to the log it emits into cannot recurse;
* **Observer neutrality** -- with ``adapt=False`` a monitored run's
  simulation metrics are byte-identical to an unmonitored run's;
* **Closed loop** -- with ``adapt=True`` drift causally leads to
  ``session.renegotiated`` records sharing the session id, and the run
  still ends with quiescent brokers (even racing fault re-planning).
"""

import json
from types import SimpleNamespace

import pytest

from repro.obs import ObservabilityConfig, active_event_log
from repro.obs.analyze import adaptation_summary, load_trace
from repro.obs.events import EventLog
from repro.obs.export import TRACE_SCHEMA_VERSION
from repro.obs.monitor import (
    MONITOR_EVENT_KINDS,
    AdaptationPolicy,
    BrokerEstimate,
    MonitorConfig,
    OnlineMonitor,
    replay_events,
)
from repro.obs.slo import SLOSpec, SLOViolation
from repro.sim.experiment import (
    WORKERS_ENV,
    ParallelSweepRunner,
    SerialSweepRunner,
    SimulationConfig,
    run_configs,
    run_simulation,
)
from repro.sim.workload import WorkloadSpec


def monitored_config(adapt=True, **kw):
    defaults = dict(
        algorithm="tradeoff",
        seed=7,
        staleness=2.0,
        workload=WorkloadSpec(rate_per_60tu=140.0, horizon=120.0),
        monitoring=MonitorConfig(adapt=adapt),
    )
    defaults.update(kw)
    return SimulationConfig(**defaults)


def planned(log, session, available, *, psi=0.4, bottleneck="cpu:H1", time=1.0):
    log.emit(
        "session.planned",
        session=session,
        time=time,
        service="S1",
        level="Qf",
        rank=0,
        psi=psi,
        bottleneck=bottleneck,
        requested={k: v / 2.0 for k, v in available.items()},
        available=dict(available),
    )


def admitted(log, session, *, level=3, time=1.0):
    log.emit(
        "session.admitted",
        session=session,
        time=time,
        service="S1",
        numeric_level=level,
    )


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            {"drift_threshold": 0.0},
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"window": -1.0},
            {"rate_window": 0.0},
            {"observe_every": -1},
            {"max_renegotiations": -1},
            {"cooldown": -0.1},
            {"queue_capacity": 0},
        ],
    )
    def test_bad_values_rejected(self, kw):
        with pytest.raises(ValueError):
            MonitorConfig(**kw)

    def test_slo_spec_validation(self):
        with pytest.raises(ValueError, match="no objective"):
            SLOSpec("empty")
        with pytest.raises(ValueError, match="non-empty name"):
            SLOSpec("", max_psi=0.5)
        with pytest.raises(ValueError, match="within"):
            SLOSpec("r", max_rejection_rate=1.5)
        spec = SLOSpec("ok", max_rejection_rate=0.2, min_qos_level=2.0)
        assert spec.min_sessions == 5
        violation = SLOViolation("ok", "rejection_rate", 0.4, 0.2)
        assert violation.to_attributes()["objective"] == "rejection_rate"


class TestBrokerEstimate:
    def test_empty_history_is_inert(self):
        """No samples: alpha stays at the §4.3.1 neutral 1.0, the EWMA
        stays None (nothing to drift against), rates stay 0."""
        estimate = BrokerEstimate("cpu:H1", window=3.0)
        assert estimate.ewma_available is None
        assert estimate.alpha == 1.0
        assert estimate.rejection_rate(10.0, 60.0) == 0.0
        digest = estimate.digest(10.0, 60.0)
        assert digest["ewma_available"] is None and digest["updates"] == 0

    def test_first_sample_seeds_later_samples_smooth(self):
        estimate = BrokerEstimate("cpu:H1", window=3.0)
        estimate.record_available(1.0, 100.0, ewma_alpha=0.5)
        assert estimate.ewma_available == 100.0
        estimate.record_available(2.0, 50.0, ewma_alpha=0.5)
        assert estimate.ewma_available == pytest.approx(75.0)
        assert estimate.updates == 2

    def test_timeless_samples_skip_alpha(self):
        # events without a sim time still feed the EWMA but cannot be
        # placed in the §4.3.1 averaging window
        estimate = BrokerEstimate("cpu:H1", window=3.0)
        estimate.record_available(None, 80.0, ewma_alpha=0.3)
        assert estimate.ewma_available == 80.0
        assert estimate.alpha == 1.0

    def test_rejection_rate_window_prunes(self):
        estimate = BrokerEstimate("cpu:H1", window=3.0)
        estimate.record_attempt(0.0, True, rate_window=10.0)
        estimate.record_attempt(5.0, False, rate_window=10.0)
        assert estimate.rejection_rate(5.0, 10.0) == pytest.approx(0.5)
        # the early rejection ages out of the window
        assert estimate.rejection_rate(11.0, 10.0) == 0.0


class TestDriftDetection:
    def setup_monitor(self, **kw):
        config = MonitorConfig(adapt=False, observe_every=0, **kw)
        log = EventLog()
        monitor = OnlineMonitor(config, log=log)
        log.subscribe(monitor.on_event)
        return monitor, log

    def test_drift_fires_once_per_baseline(self):
        monitor, log = self.setup_monitor()
        planned(log, "s1", {"cpu:H1": 100.0})
        admitted(log, "s1")
        log.emit(
            "broker.release", resource="cpu:H1", time=2.0,
            amount=10.0, available=50.0,
        )
        drifts = [e for e in log if e.kind == "session.drift"]
        assert len(drifts) == 1
        attrs = drifts[0].attributes
        assert drifts[0].session == "s1" and drifts[0].resource == "cpu:H1"
        assert attrs["planned"] == 100.0
        assert attrs["observed"] == 50.0
        assert attrs["direction"] == "down"
        assert attrs["relative"] == pytest.approx(0.5)
        # further divergence on the same baseline stays silent
        log.emit("broker.release", resource="cpu:H1", time=3.0, available=30.0)
        assert log.count("session.drift") == 1
        assert monitor.drift_detected == 1

    def test_readmission_refreshes_the_baseline(self):
        monitor, log = self.setup_monitor()
        planned(log, "s1", {"cpu:H1": 100.0})
        admitted(log, "s1")
        log.emit("broker.release", resource="cpu:H1", time=2.0, available=50.0)
        assert log.count("session.drift") == 1
        # a renegotiation re-admits the session against fresh numbers;
        # the drift flag re-arms against the new baseline
        planned(log, "s1", {"cpu:H1": 50.0}, time=3.0)
        admitted(log, "s1", level=2, time=3.0)
        log.emit("broker.release", resource="cpu:H1", time=4.0, available=50.0)
        assert log.count("session.drift") == 1  # spot on the new plan
        for n in range(4):  # pull the EWMA well below the new baseline
            log.emit(
                "broker.release", resource="cpu:H1", time=5.0 + n, available=1.0
            )
        assert log.count("session.drift") == 2
        assert monitor.drift_detected == 2

    def test_within_threshold_is_silent_and_upward_drift_labeled(self):
        monitor, log = self.setup_monitor(drift_threshold=0.5)
        planned(log, "s1", {"cpu:H1": 100.0})
        admitted(log, "s1")
        log.emit("broker.release", resource="cpu:H1", time=2.0, available=80.0)
        assert log.count("session.drift") == 0
        log.emit("broker.release", resource="cpu:H1", time=3.0, available=400.0)
        (drift,) = [e for e in log if e.kind == "session.drift"]
        assert drift.attributes["direction"] == "up"

    def test_stale_probes_are_ignored(self):
        monitor, log = self.setup_monitor()
        planned(log, "s1", {"cpu:H1": 100.0})
        admitted(log, "s1")
        log.emit(
            "broker.probe", resource="cpu:H1", time=2.0,
            available=1.0, stale=True,
        )
        assert log.count("session.drift") == 0
        # the bottleneck's psi estimate exists (from session.planned),
        # but the stale availability sample was never folded in
        assert monitor.estimates["cpu:H1"].ewma_available is None

    def test_closed_sessions_stop_drifting(self):
        monitor, log = self.setup_monitor()
        planned(log, "s1", {"cpu:H1": 100.0})
        admitted(log, "s1")
        monitor.session_closed("s1")
        log.emit("broker.release", resource="cpu:H1", time=2.0, available=10.0)
        assert log.count("session.drift") == 0

    def test_monitor_never_feeds_on_itself(self):
        monitor, log = self.setup_monitor()
        planned(log, "s1", {"cpu:H1": 100.0})
        admitted(log, "s1")
        seen_before = monitor.events_seen
        log.emit("broker.release", resource="cpu:H1", time=2.0, available=10.0)
        # the release *and* the drift it provoked both hit the
        # subscriber, but only the release counts as input
        assert log.count("session.drift") == 1
        assert monitor.events_seen == seen_before + 1
        # grant availability is pre-grant: the estimate folds in the post
        log.emit(
            "broker.grant", resource="cpu:H1", session="s2", time=3.0,
            requested=30.0, available=100.0,
        )
        estimate = monitor.estimates["cpu:H1"]
        assert estimate.ewma_available < 100.0

    def test_broker_observed_digests_emitted_periodically(self):
        config = MonitorConfig(adapt=False, observe_every=2)
        log = EventLog()
        monitor = OnlineMonitor(config, log=log)
        log.subscribe(monitor.on_event)
        for n in range(4):
            log.emit(
                "broker.release", resource="cpu:H1", time=float(n),
                available=100.0,
            )
        observed = [e for e in log if e.kind == "broker.observed"]
        assert len(observed) == 2
        assert observed[0].attributes["updates"] == 2
        assert observed[0].attributes["ewma_available"] == pytest.approx(100.0)


class TestSLOWatchdogs:
    def make(self, spec):
        config = MonitorConfig(adapt=False, observe_every=0, slos=(spec,))
        log = EventLog()
        monitor = OnlineMonitor(config, log=log)
        log.subscribe(monitor.on_event)
        return monitor, log

    def test_rejection_rate_trips_once_with_hysteresis(self):
        spec = SLOSpec("rej", max_rejection_rate=0.2, min_sessions=1)
        monitor, log = self.make(spec)
        planned(log, "s1", {"cpu:H1": 100.0})
        admitted(log, "s1")
        log.emit(
            "broker.reject", resource="cpu:H1", session="s2", time=2.0,
            requested=90.0, available=50.0,
        )
        log.emit("session.rejected", session="s2", time=2.0, reason="admission_failed")
        violations = [e for e in log if e.kind == "slo.violated"]
        assert len(violations) == 1
        attrs = violations[0].attributes
        assert attrs["slo"] == "rej" and attrs["objective"] == "rejection_rate"
        assert attrs["measured"] == 1.0 and attrs["limit"] == 0.2
        # still tripped: no second event while the rate stays high
        log.emit("session.rejected", session="s3", time=3.0, reason="admission_failed")
        assert log.count("slo.violated") == 1
        # recovery (nine grants drown the rejections) re-arms the spec...
        for n in range(9):
            log.emit(
                "broker.grant", resource="cpu:H1", session=f"g{n}",
                time=4.0 + n, requested=1.0, available=100.0,
            )
        planned(log, "s4", {"cpu:H1": 100.0}, time=14.0)
        admitted(log, "s4", time=14.0)
        assert monitor.global_rejection_rate(14.0) <= 0.2
        # ...so the next sustained crossing emits a second event
        for n in range(4):
            log.emit(
                "broker.reject", resource="cpu:H1", session=f"r{n}",
                time=15.0 + n, requested=90.0, available=10.0,
            )
        log.emit("session.rejected", session="s5", time=19.0, reason="admission_failed")
        assert log.count("slo.violated") == 2
        assert monitor.slo_violations == 2

    def test_min_sessions_warmup_gate(self):
        spec = SLOSpec("rej", max_rejection_rate=0.1, min_sessions=3)
        monitor, log = self.make(spec)
        log.emit("broker.reject", resource="cpu:H1", session="s1", time=1.0, available=5.0)
        log.emit("session.rejected", session="s1", time=1.0, reason="admission_failed")
        assert log.count("slo.violated") == 0  # one outcome < warm-up of 3

    def test_qos_level_objective_targets_worst_session(self):
        spec = SLOSpec("qos", min_qos_level=2.5, min_sessions=1)
        monitor, log = self.make(spec)
        planned(log, "hi", {"cpu:H1": 100.0})
        admitted(log, "hi", level=3)
        planned(log, "lo", {"cpu:H2": 100.0})
        admitted(log, "lo", level=1)  # EWMA drops below 2.5
        (violation,) = [e for e in log if e.kind == "slo.violated"]
        assert violation.attributes["objective"] == "qos_level"
        assert violation.session == "lo"  # renegotiate the worst-off session


class FakeCoordinator:
    """Stands in for ReservationCoordinator.renegotiate in unit tests."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = []

    def renegotiate(self, session_id, service_name, binding, planner, **kw):
        self.calls.append((session_id, kw["trigger"], kw["now"]))
        outcome, new_level = self.outcomes.pop(0)
        return SimpleNamespace(
            outcome=outcome,
            success=outcome in ("upgraded", "downgraded", "unchanged"),
            new_level=new_level,
        )


class TestAdaptationPolicy:
    def make_policy(self, outcomes, **kw):
        coordinator = FakeCoordinator(outcomes)
        policy = AdaptationPolicy(coordinator, MonitorConfig(**kw))
        policy.watch(
            "s1", service_name="S1", binding=None, planner=None, level=3
        )
        return coordinator, policy

    def test_budget_and_cooldown(self):
        coordinator, policy = self.make_policy(
            [("downgraded", 2), ("unchanged", 2), ("unchanged", 2)],
            max_renegotiations=2, cooldown=5.0,
        )
        policy.on_drift("s1", "cpu:H1", 10.0)
        assert len(coordinator.calls) == 1
        policy.on_drift("s1", "cpu:H1", 12.0)  # within cooldown: skipped
        assert len(coordinator.calls) == 1
        policy.on_drift("s1", "cpu:H1", 20.0)
        assert len(coordinator.calls) == 2
        policy.on_drift("s1", "cpu:H1", 40.0)  # budget of 2 exhausted
        assert len(coordinator.calls) == 2
        assert policy.stats()["triggered"] == 2
        assert policy.stats()["outcomes"] == {"downgraded": 1, "unchanged": 1}
        assert policy.delivered == {"s1": 2}

    def test_unknown_sessions_and_unwatch_are_ignored(self):
        coordinator, policy = self.make_policy([("unchanged", 3)])
        policy.on_drift("ghost", "cpu:H1", 1.0)
        policy.unwatch("s1")
        policy.on_drift("s1", "cpu:H1", 1.0)
        assert coordinator.calls == []

    def test_failed_dropped_blocks_further_attempts(self):
        coordinator, policy = self.make_policy(
            [("failed_dropped", None)], cooldown=0.0
        )
        policy.on_drift("s1", "cpu:H1", 1.0)
        policy.on_drift("s1", "cpu:H1", 50.0)
        assert len(coordinator.calls) == 1
        assert policy.stats()["sessions_dropped"] == 1
        assert "s1" in policy.dropped

    def test_finalize_outcome_patches_level_and_drops(self):
        from repro.runtime.session import SessionOutcome

        coordinator, policy = self.make_policy([("downgraded", 1)])
        policy.on_drift("s1", "cpu:H1", 1.0)
        base = dict(
            service="S1", arrived_at=0.0, plan=None, reason="completed",
            duration=5.0, demand_scale=1.0,
        )
        outcome = SessionOutcome(session_id="s1", success=True, qos_level=3, **base)
        patched = policy.finalize_outcome(outcome)
        assert patched.qos_level == 1 and patched.success
        untouched = SessionOutcome(session_id="s9", success=True, qos_level=2, **base)
        assert policy.finalize_outcome(untouched) is untouched
        policy.dropped.add("s1")
        dropped = policy.finalize_outcome(outcome)
        assert not dropped.success
        assert dropped.reason == "renegotiation_failed"

    def test_reentrant_triggers_queue_instead_of_recursing(self):
        calls = []

        class ReentrantCoordinator:
            def __init__(self):
                self.policy = None

            def renegotiate(self, session_id, *a, **kw):
                calls.append(session_id)
                if len(calls) == 1:
                    # the renegotiation's own events raise a new trigger
                    self.policy.on_drift("s2", "cpu:H1", kw["now"])
                return SimpleNamespace(
                    outcome="unchanged", success=True, new_level=3
                )

        coordinator = ReentrantCoordinator()
        policy = AdaptationPolicy(coordinator, MonitorConfig(cooldown=0.0))
        coordinator.policy = policy
        for sid in ("s1", "s2"):
            policy.watch(sid, service_name="S1", binding=None, planner=None, level=3)
        policy.on_drift("s1", "cpu:H1", 1.0)
        # s2's nested trigger ran after s1's renegotiation returned
        assert calls == ["s1", "s2"]


class TestReplay:
    def test_replay_matches_live_monitor(self):
        config = MonitorConfig(adapt=False)
        live_log = EventLog()
        live = OnlineMonitor(config, log=live_log)
        live_log.subscribe(live.on_event)
        planned(live_log, "s1", {"cpu:H1": 100.0})
        admitted(live_log, "s1")
        live_log.emit("broker.release", resource="cpu:H1", time=2.0, available=40.0)
        replayed, replay_log = replay_events(list(live_log), config)
        assert replayed.report() == live.report()
        # the replay's detections are not double-counted from the
        # recording's own monitor events
        assert replay_log.count("session.drift") == live_log.count("session.drift") == 1


class TestMonitoredSimulation:
    @pytest.fixture(scope="class")
    def adaptive_run(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("monitor") / "trace.json"
        config = monitored_config(
            observability=ObservabilityConfig(
                trace=True, metrics=True, events=True, trace_path=str(out)
            )
        )
        return run_simulation(config), out

    def test_adaptation_loop_closes(self, adaptive_run):
        result, _ = adaptive_run
        stats = result.monitor_stats
        assert stats is not None
        assert stats["drift_detected"] > 0
        assert stats["adaptation"]["triggered"] > 0
        assert stats["adaptation"]["sessions_renegotiated"] > 0

    def test_trace_round_trip_and_causality(self, adaptive_run):
        result, path = adaptive_run
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == TRACE_SCHEMA_VERSION
        doc = load_trace(path)
        assert doc.monitoring == result.monitor_stats
        assert payload["event_counts"].get("session.renegotiated", 0) > 0
        summary = adaptation_summary(doc)
        assert summary.total_renegotiations > 0
        # every renegotiation is causally traceable to a prior trigger
        # event sharing its session id
        assert summary.unmatched_renegotiations == 0
        for session, trigger_seq, reneg_seq in summary.causal_pairs:
            assert trigger_seq < reneg_seq

    def test_observer_neutrality_when_not_adapting(self):
        plain = run_simulation(monitored_config(monitoring=None))
        watched = run_simulation(monitored_config(adapt=False))
        assert watched.monitor_stats is not None
        assert watched.monitor_stats["drift_detected"] > 0
        assert plain.metrics == watched.metrics

    def test_monitoring_off_leaves_no_stats(self):
        result = run_simulation(monitored_config(monitoring=None))
        assert result.monitor_stats is None

    def test_renegotiation_races_fault_replanning(self):
        """Drift-driven renegotiation and failure-driven re-planning
        coexist: injected crashes while the adaptation loop runs must
        not leak capacity (run_simulation verifies quiescence)."""
        from repro.faults import FaultConfig

        config = monitored_config(
            seed=11,
            faults=FaultConfig(crash_rate=0.2, drop_rate=0.05, stale_rate=0.1),
        )
        result = run_simulation(config)
        assert result.monitor_stats is not None
        assert result.metrics.attempts > 0


class TestParallelIsolation:
    def test_worker_pool_matches_serial_and_leaks_nothing(self, monkeypatch):
        configs = [
            monitored_config(staleness=staleness) for staleness in (0.0, 2.0)
        ]
        serial = run_configs(configs, runner=SerialSweepRunner())
        monkeypatch.setenv(WORKERS_ENV, "2")
        parallel = run_configs(configs, runner=ParallelSweepRunner(max_workers=2))
        for left, right in zip(serial, parallel):
            assert left.monitor_stats == right.monitor_stats
            assert left.metrics == right.metrics
        # the pool (and the in-process fallback path) must not leave a
        # monitor-subscribed log installed in this process
        assert active_event_log() is None
