"""Trace analysis (repro.obs.analyze) and Prometheus exposition (obs.prom)."""

import json
import math
from pathlib import Path

import pytest

from repro.obs import MetricsRegistry, ObservabilityConfig
from repro.obs.analyze import (
    TraceDocument,
    TraceFormatError,
    adaptation_summary,
    broker_timelines,
    critical_path,
    diff_documents,
    gate_diff,
    load_trace,
    phase_totals,
    top_bottlenecks,
)
from repro.obs.export import TRACE_SCHEMA_VERSION
from repro.obs.prom import registry_exposition, snapshot_exposition

GOLDEN_DIR = Path(__file__).parent / "data"
GOLDEN_V1 = GOLDEN_DIR / "trace_v1_golden.json"
GOLDEN_V2 = GOLDEN_DIR / "trace_v2_golden.json"
GOLDEN_V3 = GOLDEN_DIR / "trace_v3_golden.json"


class TestLoadTrace:
    def test_golden_v1_still_loads(self):
        """Schema v1 documents (pre-event-log) stay loadable forever."""
        doc = load_trace(GOLDEN_V1)
        assert doc.schema_version == 1
        assert doc.events == [] and doc.events_dropped == 0
        assert doc.span_totals["establish"]["count"] == 1
        assert doc.counter_total("broker.grants") == 2.0
        # v1 analysis degrades gracefully: no events -> empty reports
        assert broker_timelines(doc) == {}
        assert top_bottlenecks(doc) == []
        # ...but span-based analysis still works
        assert len(critical_path(doc)) == 1

    def test_golden_v2_still_loads(self):
        """Schema v2 documents (pre-monitoring) stay loadable forever."""
        payload = json.loads(GOLDEN_V2.read_text())
        assert payload["schema_version"] == 2
        doc = TraceDocument.from_dict(payload)
        assert doc.monitoring == {}  # the v3 section is absent, not invented
        assert len(doc.events) == 7
        first = doc.events[0]
        assert first.kind == "session.planned"
        assert first.attributes["requested"] == {"cpu:H1": 40.0}
        counted = {}
        for event in doc.events:
            counted[event.kind] = counted.get(event.kind, 0) + 1
        assert counted == payload["event_counts"]

    def test_golden_v3_still_loads(self):
        """Schema v3 documents (pre-trace-context) stay loadable forever."""
        payload = json.loads(GOLDEN_V3.read_text())
        assert payload["schema_version"] == 3
        assert set(payload) == {
            "schema_version",
            "meta",
            "spans",
            "span_totals",
            "metrics",
            "events",
            "event_counts",
            "monitoring",
        }
        doc = TraceDocument.from_dict(payload)
        assert doc.monitoring["drift_detected"] == 1
        assert doc.monitoring["adaptation"]["outcomes"] == {"downgraded": 1}
        drift = next(e for e in doc.events if e.kind == "session.drift")
        reneg = next(e for e in doc.events if e.kind == "session.renegotiated")
        assert drift.session == reneg.session == "ssn-1"  # causal pair
        assert drift.seq < reneg.seq
        summary = adaptation_summary(doc)
        assert summary.causal_pairs == [("ssn-1", drift.seq, reneg.seq)]
        assert summary.unmatched_renegotiations == 0

    def test_future_and_garbage_versions_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError, match="unsupported"):
            TraceDocument.from_dict({"schema_version": TRACE_SCHEMA_VERSION + 1})
        with pytest.raises(TraceFormatError, match="missing"):
            TraceDocument.from_dict({"spans": []})
        target = tmp_path / "bad.json"
        target.write_text(json.dumps({"schema_version": 0}))
        with pytest.raises(TraceFormatError):
            load_trace(target)


class TestCriticalPath:
    def test_self_times_and_critical_phase(self):
        doc = load_trace(GOLDEN_V1)
        (breakdown,) = critical_path(doc)
        assert breakdown.session == "ssn-1"
        assert breakdown.service == "S1"
        assert breakdown.outcome == "established"
        assert breakdown.total_seconds == pytest.approx(0.0016)
        phases = breakdown.phase_seconds
        # phase2_plan self time = 0.0009 - (qrg 0.0004 + plan 0.0003)
        assert phases["phase2_plan"] == pytest.approx(0.0002)
        # establish self time = 0.0016 - (0.0002 + 0.0009 + 0.0002)
        assert phases["establish"] == pytest.approx(0.0003)
        assert phases["qrg_build"] == pytest.approx(0.0004)
        # self times sum back to the root duration exactly
        assert sum(phases.values()) == pytest.approx(breakdown.total_seconds)
        assert breakdown.critical_phase == "qrg_build"

    def test_filter_sort_and_limit(self):
        doc = load_trace(GOLDEN_V2)
        both = critical_path(doc)
        assert [b.session for b in both] == ["ssn-1", "ssn-2"]  # slowest first
        assert critical_path(doc, limit=1)[0].session == "ssn-1"
        only = critical_path(doc, session="ssn-2")
        assert len(only) == 1 and only[0].outcome == "admission_failed"
        totals = phase_totals(both)
        assert totals["establish"] == pytest.approx(0.003)


class TestBrokerTimelines:
    def test_counts_rates_and_points(self):
        doc = load_trace(GOLDEN_V2)
        timelines = broker_timelines(doc)
        assert list(timelines) == ["cpu:H1"]
        timeline = timelines["cpu:H1"]
        assert (timeline.grants, timeline.rejects, timeline.releases) == (1, 1, 1)
        assert timeline.attempts == 2
        assert timeline.rejection_rate == pytest.approx(0.5)
        assert timeline.first_reject_time == 6.0
        assert timeline.peak_utilization == pytest.approx(0.4)
        # events ordered by sim time: grant at t=5, release at t=9
        assert timeline.utilization_points == [(5.0, 0.4), (9.0, 0.0)]
        assert timeline.reject_points == [(6.0, 55.0, 52.0)]


class TestTopBottlenecks:
    def test_scoring_and_ranking(self):
        doc = load_trace(GOLDEN_V2)
        (report,) = top_bottlenecks(doc, k=3)
        assert report.resource == "cpu:H1"
        assert report.planned_bottleneck == 2
        assert report.admission_failures == 1
        assert report.broker_rejects == 1
        # session kills weigh double plan-time pressure
        assert report.score == pytest.approx(2 + 2 * 1 + 2 * 1)
        assert report.mean_psi == pytest.approx((0.4 + 0.9) / 2)

    def test_k_truncates(self):
        doc = load_trace(GOLDEN_V2)
        assert top_bottlenecks(doc, k=0) == []


class TestDiff:
    def test_trace_documents_compare_curated_leaves(self):
        base = json.loads(GOLDEN_V2.read_text())
        new = json.loads(GOLDEN_V2.read_text())
        new["event_counts"]["broker.reject"] = 5
        new["metrics"]["counters"]["broker.grants{resource=cpu:H1}"]["value"] = 3.0
        entries = {e.path: e for e in diff_documents(base, new)}
        # raw span/event arrays never become leaves
        assert not any(path.startswith(("spans", "events.")) for path in entries)
        changed = entries["event_counts.broker.reject"]
        assert (changed.base, changed.new, changed.delta) == (1.0, 5.0, 4.0)
        assert changed.relative == pytest.approx(4.0)
        unchanged = entries["span_totals.establish.count"]
        assert unchanged.delta == 0.0

    def test_one_sided_leaves(self):
        entries = diff_documents({"a": 1.0}, {"b": 2.0})
        by_path = {e.path: e for e in entries}
        assert by_path["a"].new is None and by_path["a"].delta is None
        assert by_path["b"].base is None
        # one-sided leaves always gate
        assert len(gate_diff(entries, tolerance=10.0)) == 2

    def test_gate_tolerance_band(self):
        base = {"schema": "bench-ledger/1", "headline": {"x": 100.0, "y": 0.0}}
        ok = {"schema": "bench-ledger/1", "headline": {"x": 110.0, "y": 0.0}}
        bad = {"schema": "bench-ledger/1", "headline": {"x": 160.0, "y": 0.0}}
        assert gate_diff(diff_documents(base, ok), tolerance=0.25) == []
        (regression,) = gate_diff(diff_documents(base, bad), tolerance=0.25)
        assert regression.path == "headline.x"
        # zero -> nonzero is an infinite relative change: always gates
        appeared = {"schema": "bench-ledger/1", "headline": {"x": 100.0, "y": 1.0}}
        (zero_jump,) = gate_diff(diff_documents(base, appeared), tolerance=0.25)
        assert zero_jump.path == "headline.y"
        assert zero_jump.relative is math.inf
        with pytest.raises(ValueError):
            gate_diff([], tolerance=-0.1)

    def test_gate_ignore_timing(self):
        base = {"headline": {"warm_seconds": 1.0, "speedup": 4.0}}
        new = {"headline": {"warm_seconds": 9.0, "speedup": 4.1}}
        entries = diff_documents(base, new)
        assert [e.path for e in gate_diff(entries, tolerance=0.25)] == [
            "headline.warm_seconds"
        ]
        assert gate_diff(entries, tolerance=0.25, ignore_timing=True) == []

    def test_gate_timing_tolerance_is_a_separate_band(self):
        base = {"headline": {"warm_seconds": 1.0, "sessions": 100.0}}
        new = {"headline": {"warm_seconds": 1.4, "sessions": 130.0}}
        entries = diff_documents(base, new)
        # Structural band 0.25: sessions (+30%) gates, warm_seconds
        # (+40%) is held to the looser timing band instead.
        flagged = gate_diff(entries, tolerance=0.25, timing_tolerance=0.5)
        assert [e.path for e in flagged] == ["headline.sessions"]
        # Tightening the timing band flags the wall clock too.
        flagged = gate_diff(entries, tolerance=0.25, timing_tolerance=0.1)
        assert [e.path for e in flagged] == [
            "headline.sessions",
            "headline.warm_seconds",
        ]
        with pytest.raises(ValueError):
            gate_diff(entries, timing_tolerance=-0.5)

    def test_speedup_is_a_timing_leaf(self):
        from repro.obs.analyze import is_timing_path

        assert is_timing_path("headline.speedup_4w")
        assert is_timing_path("headline.parallel_seconds")
        assert not is_timing_path("headline.sessions")

    def test_comparable_view_skips_timing_baselines_and_runner(self):
        from repro.obs.analyze import comparable_view

        doc = {
            "schema": "bench-ledger/1",
            "runner": {"fingerprint": "aaa-8c-py3.11", "cpus": "8"},
            "headline": {"speedup": 2.0},
            "timing_baselines": {"aaa-8c-py3.11": {"headline.speedup": 2.0}},
        }
        assert comparable_view(doc) == {"headline.speedup": 2.0}

    def test_booleans_and_strings_are_not_leaves(self):
        entries = diff_documents(
            {"git_sha": "abc", "ok": True, "n": 1},
            {"git_sha": "def", "ok": False, "n": 1},
        )
        assert [e.path for e in entries] == ["n"]


class TestPromExposition:
    def test_registry_round_numbers(self):
        registry = MetricsRegistry()
        registry.counter("broker.grants", resource="cpu:H1").inc(5)
        registry.gauge("broker.utilization", resource="cpu:H1").set(0.25)
        histogram = registry.histogram("establish.latency", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 2.0):
            histogram.observe(value)
        text = registry_exposition(registry)
        lines = text.splitlines()
        assert "# TYPE repro_broker_grants_total counter" in lines
        assert 'repro_broker_grants_total{resource="cpu:H1"} 5.0' in lines
        assert 'repro_broker_utilization{resource="cpu:H1"} 0.25' in lines
        # histogram buckets are cumulative and end with +Inf == _count
        assert 'repro_establish_latency_bucket{le="0.1"} 1.0' in lines
        assert 'repro_establish_latency_bucket{le="1"} 2.0' in lines
        assert 'repro_establish_latency_bucket{le="+Inf"} 3.0' in lines
        assert "repro_establish_latency_sum 2.55" in text
        assert "repro_establish_latency_count 3.0" in lines
        # exactly one TYPE header per metric family
        assert sum(1 for l in lines if l.startswith("# TYPE repro_establish_latency ")) == 1

    def test_snapshot_from_trace_document(self):
        doc = load_trace(GOLDEN_V1)
        text = snapshot_exposition(doc.metrics)
        assert 'repro_broker_grants_total{resource="cpu:H1"} 2.0' in text
        assert 'repro_coordinator_establish_seconds_bucket{le="+Inf"} 1.0' in text

    def test_label_escaping_and_name_sanitizing(self):
        text = snapshot_exposition(
            {"counters": {'weird-name{path=a"b}': {"value": 1.0}}}, prefix=""
        )
        assert text == '# TYPE weird_name_total counter\nweird_name_total{path="a\\"b"} 1.0\n'

    def test_empty_snapshot(self):
        assert snapshot_exposition({}) == ""

    def test_non_finite_values_use_prometheus_spellings(self):
        # Python's repr() spells them "inf"/"-inf"/"nan"; the exposition
        # format requires "+Inf"/"-Inf"/"NaN" or scrapers reject the
        # whole page.
        registry = MetricsRegistry()
        registry.gauge("edge.pos", kind="p").set(float("inf"))
        registry.gauge("edge.neg", kind="n").set(float("-inf"))
        registry.gauge("edge.nan", kind="x").set(float("nan"))
        text = registry_exposition(registry)
        assert 'repro_edge_pos{kind="p"} +Inf' in text.splitlines()
        assert 'repro_edge_neg{kind="n"} -Inf' in text.splitlines()
        assert 'repro_edge_nan{kind="x"} NaN' in text.splitlines()
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            assert line.rsplit(" ", 1)[1] not in {"inf", "-inf", "nan"}


class TestExportRoundTrip:
    """write_trace_json -> load_trace preserves totals, metrics, events."""

    def test_simulation_round_trip(self, tmp_path):
        from repro.sim import SimulationConfig, run_simulation
        from repro.sim.workload import WorkloadSpec

        trace_path = tmp_path / "trace.json"
        config = SimulationConfig(
            algorithm="tradeoff",
            seed=5,
            workload=WorkloadSpec(rate_per_60tu=120.0, horizon=120.0),
            observability=ObservabilityConfig(trace_path=str(trace_path)),
        )
        result = run_simulation(config)
        doc = load_trace(trace_path)
        observation = result.observation
        assert doc.schema_version == TRACE_SCHEMA_VERSION
        # span totals identical to the live tracer's
        for name in observation.tracer.names():
            assert doc.span_totals[name]["count"] == observation.tracer.count(name)
            assert doc.span_totals[name]["total_seconds"] == pytest.approx(
                observation.tracer.total_time(name)
            )
        # metrics snapshot identical
        assert doc.metrics == json.loads(json.dumps(observation.registry.snapshot()))
        # events identical after the JSON round trip
        assert [e.to_dict() for e in doc.events] == json.loads(
            json.dumps(observation.event_log.to_dicts())
        )
        # a self-diff has no changed leaves
        payload = json.loads(trace_path.read_text())
        assert all(e.delta == 0.0 for e in diff_documents(payload, payload))
