"""Property: no race of cross-shard admissions against shard failure leaks.

Hypothesis generates schedules of concurrent establishments, teardowns,
drains, un-drains and lost-ack crashes against a 2- or 3-shard cluster
of in-process shard services, interleaved on the event loop exactly as
HTTP requests interleave on the wire.  After every step each shard's
broker and proxy books must agree (capacity conservation); after the
schedule -- once crashed shards restart, live sessions tear down, and
the TTL reaper collects stranded leases -- every shard must be fully
quiescent and the merged per-shard event logs must reconcile with zero
violations: nothing leaked, nothing double-granted, every aborted 2PC
round rolled back to zero.
"""

import asyncio

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.invariants import (
    capacity_conservation,
    reconcile_shard_events,
)
from repro.obs.events import EventLog
from repro.service import DaemonConfig, ReservationService
from repro.cluster import ClusterCoordinator, LocalShardClient

from tests.test_service_daemon import VALID_PAIRS

pair_indexes = st.integers(min_value=0, max_value=len(VALID_PAIRS) - 1)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("establish"), pair_indexes),
        st.tuples(st.just("teardown"), st.integers(min_value=0, max_value=30)),
        st.tuples(st.just("drain"), st.integers(min_value=0, max_value=2)),
        st.tuples(st.just("undrain"), st.integers(min_value=0, max_value=2)),
        st.tuples(st.just("crash"), st.integers(min_value=0, max_value=2)),
        st.tuples(st.just("race"), st.lists(pair_indexes, min_size=2, max_size=4)),
    ),
    min_size=1,
    max_size=12,
)


def _assert_books_agree(shards):
    for shard in shards:
        report = capacity_conservation(
            shard.service.grid.registry, shard.service.grid.proxies
        )
        assert report.ok, f"{shard.label}: {report.describe()}"


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(shard_count=st.integers(min_value=2, max_value=3), schedule=operations)
def test_racing_admissions_and_failures_never_leak(shard_count, schedule):
    async def scenario():
        shards = []
        for index in range(shard_count):
            config = DaemonConfig(
                seed=7, shard_index=index, shard_count=shard_count
            )
            shards.append(
                LocalShardClient(
                    index, ReservationService(config), log=EventLog()
                )
            )
        coordinator = ClusterCoordinator(shards, seed=7)
        sid = 0
        established = []

        async def establish(pair_index):
            nonlocal sid
            sid += 1
            service_name, domain = VALID_PAIRS[pair_index]
            session_id = f"p-{sid}"
            status, body = await coordinator.establish(
                {
                    "service": service_name,
                    "domain": domain,
                    "session_id": session_id,
                }
            )
            assert status == 200
            import json as _json

            if _json.loads(body)["success"]:
                established.append(session_id)

        for op, arg in schedule:
            if op == "establish":
                await establish(arg)
            elif op == "teardown":
                if established:
                    await coordinator.teardown(
                        {"session_id": established.pop(arg % len(established))}
                    )
            elif op == "drain":
                shards[arg % shard_count].draining = True
            elif op == "undrain":
                shards[arg % shard_count].draining = False
            elif op == "crash":
                shards[arg % shard_count].crash_on_next_reserve = True
            elif op == "race":
                await asyncio.gather(*(establish(p) for p in arg))
            _assert_books_agree(shards)

        # Recovery: crashed shards come back, every session tears down,
        # the anti-entropy pass settles teardowns owed to shards that
        # were unreachable when the router tore the session down, and
        # the reaper collects whatever leases the failures stranded.
        for shard in shards:
            shard.crashed = False
            shard.crash_on_next_reserve = False
            shard.draining = False
        for session_id in list(established):
            await coordinator.teardown({"session_id": session_id})
        await coordinator.flush_pending_teardowns()
        assert not coordinator.pending_teardowns
        for shard in shards:
            await shard.reap(now=float("inf"))
        for shard in shards:
            assert not shard.service._shard_leases, shard.label
            report = capacity_conservation(
                shard.service.grid.registry, shard.service.grid.proxies
            )
            assert report.ok, f"{shard.label}: {report.describe()}"
            # Quiescence: with every session gone, nothing stays held.
            for host, proxy in shard.service.grid.proxies.items():
                held = getattr(proxy, "_held", {})
                for session_id, reservations in held.items():
                    assert not reservations, (shard.label, host, session_id)

        merged = reconcile_shard_events(
            {shard.label: list(shard.log) for shard in shards}
        )
        assert merged.ok, merged.describe()
        # Quiescent books: no shard keeps a positive net balance.
        for label, per_resource in merged.outstanding.items():
            assert not per_resource, (label, per_resource)

    asyncio.run(scenario())
