"""Tests for BrokerRegistry: snapshots and transactional reservation."""

import pytest

from repro.brokers import BrokerRegistry, LinkBandwidthBroker, LocalResourceBroker, PathBroker
from repro.core import ResourceVector
from repro.core.errors import AdmissionError, BrokerError


def make_registry():
    registry = BrokerRegistry()
    cpu = LocalResourceBroker("H1", "cpu", 100.0)
    link = LinkBandwidthBroker("L1", "H1", "H2", 80.0)
    path = PathBroker("net:H1-H2", [link])
    registry.register(cpu)
    registry.register(link)
    registry.register(path)
    return registry, cpu, link, path


class TestDirectory:
    def test_register_and_lookup(self):
        registry, cpu, _link, _path = make_registry()
        assert registry.broker("cpu:H1") is cpu
        assert "cpu:H1" in registry
        assert "nope" not in registry
        assert registry.resource_ids() == ("cpu:H1", "link:L1", "net:H1-H2")

    def test_duplicate_registration_rejected(self):
        registry, cpu, _link, _path = make_registry()
        with pytest.raises(BrokerError):
            registry.register(cpu)

    def test_unknown_broker_raises(self):
        registry, *_ = make_registry()
        with pytest.raises(BrokerError):
            registry.broker("disk:H9")


class TestSnapshots:
    def test_snapshot_collects_observations(self):
        registry, cpu, _link, _path = make_registry()
        cpu.reserve(25.0, "bg")
        snapshot = registry.snapshot(["cpu:H1", "net:H1-H2"])
        assert snapshot["cpu:H1"].available == 75.0
        assert snapshot["net:H1-H2"].available == 80.0

    def test_snapshot_with_observed_at_schedule(self):
        registry, cpu, _link, _path = make_registry()
        # the default clock is constant 0.0; a schedule returning None
        # falls back to the present
        snapshot = registry.snapshot(
            ["cpu:H1"], observed_at=lambda rid: None
        )
        assert snapshot["cpu:H1"].available == 100.0


class TestTransactions:
    def test_reserve_all_success(self):
        registry, cpu, link, _path = make_registry()
        demand = ResourceVector({"cpu:H1": 30.0, "net:H1-H2": 40.0})
        transaction = registry.reserve_all(demand, "s1")
        assert cpu.available == 70.0
        assert link.available == 40.0
        assert set(transaction.resource_ids) == {"cpu:H1", "net:H1-H2"}
        assert transaction.total_amount() == 70.0
        registry.release_all(transaction)
        registry.assert_quiescent()

    def test_reserve_all_rolls_back_on_failure(self):
        registry, cpu, link, _path = make_registry()
        demand = ResourceVector({"cpu:H1": 30.0, "net:H1-H2": 90.0})  # net too big
        with pytest.raises(AdmissionError):
            registry.reserve_all(demand, "s1")
        registry.assert_quiescent()
        assert cpu.available == 100.0
        assert link.available == 80.0

    def test_release_all_is_safe_to_repeat(self):
        registry, *_ = make_registry()
        transaction = registry.reserve_all(ResourceVector({"cpu:H1": 10.0}), "s1")
        registry.release_all(transaction)
        registry.release_all(transaction)  # empty now: no-op
        registry.assert_quiescent()

    def test_assert_quiescent_detects_leak(self):
        registry, cpu, *_ = make_registry()
        cpu.reserve(10.0, "leak")
        with pytest.raises(BrokerError, match="not quiescent"):
            registry.assert_quiescent()

    def test_total_outstanding(self):
        registry, *_ = make_registry()
        assert registry.total_outstanding() == 0
        registry.reserve_all(ResourceVector({"cpu:H1": 10.0, "net:H1-H2": 5.0}), "s1")
        # cpu 1 + link 1 (the path broker counts its links' reservations)
        assert registry.total_outstanding() >= 2
