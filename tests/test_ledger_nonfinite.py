"""Non-finite values never reach committed artifacts.

``float("inf")``/NaN serialize as the non-standard ``Infinity``/``NaN``
JSON tokens, which strict parsers (and the ledger diff gate) reject.
The bench ledger writer nulls them at write time; these tests load the
writer straight from ``benchmarks/conftest.py`` (the benchmarks
directory is not a package) and pin that guarantee.
"""

import importlib.util
import json
import math
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_bench_conftest():
    spec = importlib.util.spec_from_file_location(
        "bench_conftest", REPO_ROOT / "benchmarks" / "conftest.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestNulledNonFinite:
    def test_scalars_and_nesting(self):
        bench = load_bench_conftest()
        nulled = bench._nulled_non_finite(
            {
                "ok": 1.5,
                "pos": float("inf"),
                "neg": float("-inf"),
                "nan": float("nan"),
                "nested": {"rows": [1.0, float("inf"), (2.0, float("nan"))]},
                "text": "inf",
                "count": 7,
            }
        )
        assert nulled["ok"] == 1.5
        assert nulled["pos"] is None
        assert nulled["neg"] is None
        assert nulled["nan"] is None
        assert nulled["nested"]["rows"] == [1.0, None, [2.0, None]]
        assert nulled["text"] == "inf"  # strings pass through untouched
        assert nulled["count"] == 7

    def test_integers_survive(self):
        bench = load_bench_conftest()
        assert bench._nulled_non_finite(10**30) == 10**30


class TestLedgerWriter:
    def test_non_finite_headline_is_nulled_on_disk(self, tmp_path, monkeypatch):
        bench = load_bench_conftest()
        monkeypatch.setenv(bench.LEDGER_DIR_ENV, str(tmp_path))
        target = bench.write_bench_ledger(
            "nonfinite_probe",
            headline={
                "speedup": float("inf"),
                "ratio_nan": float("nan"),
                "floor": float("-inf"),
                "count": 3,
                "wall_seconds": 0.25,
            },
            environment={"note": "test"},
        )
        text = target.read_text()
        # The raw bytes carry none of the non-standard JSON tokens.
        assert "Infinity" not in text
        assert "NaN" not in text
        document = json.loads(text)
        headline = document["headline"]
        assert headline["speedup"] is None
        assert headline["ratio_nan"] is None
        assert headline["floor"] is None
        assert headline["count"] == 3
        assert headline["wall_seconds"] == 0.25
        # Timing baselines were extracted *after* nulling: the nulled
        # "speedup" (a timing-fragment key) must not reappear there as
        # a non-finite number.
        for timings in document.get("timing_baselines", {}).values():
            for value in timings.values():
                assert value is None or math.isfinite(value)


class TestComplexitySpeedupGuard:
    def test_zero_warm_time_yields_none_not_inf(self):
        # The complexity experiment's cache-speedup line: a timer-
        # granularity zero warm time must degrade to None ("n/a" in the
        # report), never emit float("inf") into the report extras.
        from repro.analysis.experiments import finite_speedup

        assert finite_speedup(1e-6, 0.0) is None
        assert finite_speedup(1e-6, -1.0) is None
        assert finite_speedup(1e300, 1e-300) is None  # overflows to inf
        assert finite_speedup(4.0, 2.0) == 2.0
