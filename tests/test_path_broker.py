"""Tests for the two-level end-to-end path broker (paper §3)."""

import pytest

from repro.brokers import LinkBandwidthBroker, PathBroker
from repro.core.errors import AdmissionError, BrokerError


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_route(*capacities):
    links = [
        LinkBandwidthBroker(f"L{i}", f"N{i}", f"N{i+1}", capacity)
        for i, capacity in enumerate(capacities)
    ]
    return PathBroker("net:N0-N9", links), links


class TestTwoLevelAvailability:
    def test_availability_is_min_over_links(self):
        path, links = make_route(100, 50, 80)
        assert path.available == 50.0
        assert path.capacity == 50.0
        links[0].reserve(70.0, "other")  # L0 drops to 30
        assert path.available == 30.0
        assert path.bottleneck_link() is links[0]

    def test_requires_at_least_one_link(self):
        with pytest.raises(BrokerError):
            PathBroker("net:x", [])

    def test_observe_reports_min(self):
        path, links = make_route(100, 60)
        links[1].reserve(20.0, "bg")
        assert path.observe().available == 40.0


class TestTransactionalReservation:
    def test_reserves_on_every_link(self):
        path, links = make_route(100, 100)
        reservation = path.reserve(30.0, "s1")
        assert all(link.available == 70.0 for link in links)
        assert len(reservation.link_reservations) == 2
        path.release(reservation)
        assert all(link.available == 100.0 for link in links)
        assert all(link.outstanding() == 0 for link in links)

    def test_failure_rolls_back_partial_reservations(self):
        path, links = make_route(100, 20, 100)
        with pytest.raises(AdmissionError) as info:
            path.reserve(30.0, "s1")
        assert info.value.resource_id == "net:N0-N9"
        assert all(link.available == link.capacity for link in links)
        assert all(link.outstanding() == 0 for link in links)

    def test_shared_link_between_two_paths(self):
        shared = LinkBandwidthBroker("LS", "A", "B", 100.0)
        path1 = PathBroker("net:1", [shared])
        path2 = PathBroker("net:2", [shared])
        path1.reserve(60.0, "s1")
        assert path2.available == 40.0
        with pytest.raises(AdmissionError):
            path2.reserve(50.0, "s2")
        path2.reserve(40.0, "s2")
        assert shared.available == pytest.approx(0.0)

    def test_nonpositive_amount_rejected(self):
        path, _links = make_route(100)
        with pytest.raises(BrokerError):
            path.reserve(-5.0, "s1")

    def test_utilization_and_outstanding(self):
        path, _links = make_route(100, 200)
        path.reserve(50.0, "s1")
        assert path.utilization() == pytest.approx(0.5)
        assert path.outstanding() == 1


class TestStaleObservation:
    def test_stale_value_is_min_of_link_histories(self):
        clock = FakeClock()
        links = [
            LinkBandwidthBroker("L0", "A", "B", 100.0, clock=clock),
            LinkBandwidthBroker("L1", "B", "C", 80.0, clock=clock),
        ]
        path = PathBroker("net:A-C", links, clock=clock)
        clock.now = 5.0
        links[0].reserve(50.0, "bg")  # L0: 50 from t=5
        clock.now = 10.0
        assert path.observe_stale(3.0).available == 80.0  # min(100, 80)
        assert path.observe_stale(7.0).available == 50.0  # min(50, 80)

    def test_alpha_downtrend_on_path(self):
        clock = FakeClock()
        link = LinkBandwidthBroker("L0", "A", "B", 100.0, clock=clock)
        path = PathBroker("net:A-B", [link], clock=clock)
        path.observe()  # report 100 at t=0
        clock.now = 1.0
        path.reserve(50.0, "s1")
        assert path.observe().alpha == pytest.approx(0.5)
