"""Tests for the analysis/reproduction harness."""

import pytest

from repro.analysis.figures import Series, ascii_chart, format_series_table, to_csv
from repro.analysis.tables import (
    format_class_table,
    format_path_census_table,
    format_summary_line,
)
from repro.sim import SimulationConfig, WorkloadSpec, run_simulation
from repro.sim.metrics import PathCensus


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("s", [1, 2], [1.0])

    def test_table_formatting(self):
        table = format_series_table(
            "Title",
            "rate",
            [Series("basic", [60, 120], [0.9, 0.8]), Series("random", [60, 120], [0.7, 0.5])],
        )
        assert "Title" in table
        assert "basic" in table and "random" in table
        assert "0.900" in table and "0.500" in table

    def test_table_requires_aligned_x(self):
        with pytest.raises(ValueError):
            format_series_table(
                "T", "x", [Series("a", [1], [1.0]), Series("b", [2], [1.0])]
            )

    def test_empty_table(self):
        assert "(no data)" in format_series_table("T", "x", [])

    def test_csv(self):
        csv = to_csv([Series("a", [1, 2], [0.5, 0.25])], x_label="rate")
        lines = csv.strip().split("\n")
        assert lines[0] == "rate,a"
        assert lines[1] == "1.0,0.5"

    def test_csv_empty(self):
        assert to_csv([]) == ""

    def test_ascii_chart_renders(self):
        chart = ascii_chart(
            [Series("up", [0, 1, 2], [0.0, 0.5, 1.0])], width=20, height=6
        )
        assert "o = up" in chart
        assert "o" in chart.split("\n")[0] + chart.split("\n")[1]

    def test_ascii_chart_empty(self):
        assert ascii_chart([]) == "(no data)"

    def test_ascii_chart_flat_series(self):
        chart = ascii_chart([Series("flat", [0, 1], [1.0, 1.0])], width=10, height=4)
        assert "flat" in chart


class TestTableFormatting:
    def test_path_census_table(self):
        census_a, census_b = PathCensus(), PathCensus()
        for _ in range(3):
            census_a.record("A", "Qa-Qb")
        census_a.record("A", "Qa-Qc")
        census_b.record("A", "Qa-Qb")
        text = format_path_census_table(
            "Table X", "A", {"basic": census_a, "tradeoff": census_b}
        )
        assert "Qa-Qb" in text and "Qa-Qc" in text
        assert "75.0%" in text and "100.0%" in text

    def test_class_table_and_summary(self):
        config = SimulationConfig(seed=0, workload=WorkloadSpec(rate_per_60tu=80, horizon=200))
        result = run_simulation(config)
        text = format_class_table("Table Y", {80.0: result})
        assert "norm.-short" in text and "fat-long" in text
        assert "80 ssn.s/60 TUs" in text
        line = format_summary_line(result)
        assert "algorithm=basic" in line and "success=" in line


class TestExperimentRunners:
    """Smoke tests of the lighter experiment runners (quick mode)."""

    def test_complexity_runner(self):
        from repro.analysis.experiments import run_complexity

        report = run_complexity(seed=0, quick=True)
        assert "K\\Q" in report.text
        assert "fitted" in report.text
        # Growing the problem must grow the cost.  (The fitted exponents
        # are asserted with proper bounds in the benchmark suite; at the
        # quick runner's micro sizes wall-clock noise under system load
        # would make tight exponent bounds flaky here.)
        rows = {(k, q): t for k, q, t in report.extras["rows"]}
        assert rows[(8, 8)] > rows[(2, 2)]

    def test_dag_ablation_runner(self):
        from repro.analysis.experiments import run_dag_ablation

        report = run_dag_ablation(seed=0, quick=True)
        assert report.extras["feasible"] > 0
        assert "heuristic" in report.text

    def test_cli_list(self, capsys):
        from repro.analysis.reproduce import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out and "tab34" in out

    def test_cli_runs_experiment_to_files(self, tmp_path, capsys, monkeypatch):
        # shrink the quick horizon further so CLI smoke test stays fast
        import repro.analysis.experiments as experiments

        monkeypatch.setattr(experiments, "_horizon", lambda quick: 150.0)
        monkeypatch.setattr(experiments, "_rates", lambda quick: [60, 180])
        from repro.analysis.reproduce import main

        assert main(["-e", "fig13", "--quick", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig13.txt").exists()
        assert (tmp_path / "fig13.csv").exists()
        out = capsys.readouterr().out
        assert "Figure 13(a)" in out


class TestArtifactRunnersMicro:
    """Micro-scale smoke of the heavy artifact runners (monkeypatched)."""

    @pytest.fixture(autouse=True)
    def shrink(self, monkeypatch):
        import repro.analysis.experiments as experiments

        monkeypatch.setattr(experiments, "_horizon", lambda quick: 150.0)
        monkeypatch.setattr(experiments, "_rates", lambda quick: [60.0, 200.0])

    def test_fig11_runner(self):
        from repro.analysis.experiments import run_fig11

        report = run_fig11(seed=1, quick=True)
        assert "Figure 11(a)" in report.text and "Figure 11(b)" in report.text
        assert len(report.series) == 6  # 3 success + 3 qos
        assert len(report.results) == 6  # 3 algorithms x 2 rates

    def test_tab12_runner(self):
        from repro.analysis.experiments import run_tables_1_2

        report = run_tables_1_2(seed=1, quick=True)
        assert "Table 1" in report.text and "Table 2" in report.text
        assert "bottleneck" in report.text

    def test_tab34_runner(self):
        from repro.analysis.experiments import run_tables_3_4

        report = run_tables_3_4(seed=1, quick=True)
        assert "Table 3" in report.text and "Table 4" in report.text
        assert "fat-long" in report.text

    def test_fig12_runner(self):
        from repro.analysis.experiments import run_fig12

        report = run_fig12(seed=1, quick=True)
        assert "Figure 12(a)" in report.text and "Figure 12(b)" in report.text
        names = {s.name for s in report.series}
        assert any("E=8" in name for name in names)

    def test_fig13_runner(self):
        from repro.analysis.experiments import run_fig13

        report = run_fig13(seed=1, quick=True)
        assert "Figure 13(a)" in report.text

    def test_ablation_runner(self):
        from repro.analysis.experiments import run_ablation

        report = run_ablation(seed=1, quick=True)
        assert "basic/psi=ratio" in report.text
        assert "tradeoff/psi=log" in report.text
