"""Tests for ServiceComponent and Binding."""

import pytest

from repro.core import (
    Binding,
    ModelError,
    QoSLevel,
    QoSVector,
    ResourceVector,
    ServiceComponent,
    TabularTranslation,
)


def lv(label: str, q: int = 1) -> QoSLevel:
    return QoSLevel(label, QoSVector(q=q))


def component(**overrides) -> ServiceComponent:
    kwargs = dict(
        name="c",
        input_levels=(lv("Qi", 2),),
        output_levels=(lv("Qo1", 2), lv("Qo2", 1)),
        translation=TabularTranslation(
            {("Qi", "Qo1"): {"cpu": 10, "net": 5}, ("Qi", "Qo2"): {"cpu": 4, "net": 2}}
        ),
    )
    kwargs.update(overrides)
    return ServiceComponent(**kwargs)


class TestServiceComponent:
    def test_requires_name_and_levels(self):
        with pytest.raises(ModelError):
            component(name="")
        with pytest.raises(ModelError):
            component(input_levels=())
        with pytest.raises(ModelError):
            component(output_levels=())

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ModelError):
            component(output_levels=(lv("X"), lv("X")))

    def test_level_lookup(self):
        c = component()
        assert c.input_level("Qi").label == "Qi"
        assert c.output_level("Qo2").label == "Qo2"
        with pytest.raises(ModelError):
            c.input_level("nope")
        with pytest.raises(ModelError):
            c.output_level("nope")

    def test_supported_pairs(self):
        pairs = list(component().supported_pairs())
        assert len(pairs) == 2
        labels = {(qin.label, qout.label) for qin, qout, _req in pairs}
        assert labels == {("Qi", "Qo1"), ("Qi", "Qo2")}

    def test_slots_from_table(self):
        assert component().slots() == frozenset({"cpu", "net"})

    def test_slots_from_probing_callable(self):
        from repro.core import CallableTranslation

        c = component(translation=CallableTranslation(lambda a, b: {"disk": 1.0}))
        assert c.slots() == frozenset({"disk"})

    def test_with_translation(self):
        c = component()
        replacement = TabularTranslation({("Qi", "Qo1"): {"cpu": 1, "net": 1}})
        c2 = c.with_translation(replacement)
        assert c2.translation is replacement
        assert c2.name == c.name and c2.input_levels == c.input_levels


class TestBinding:
    def test_resource_lookup(self):
        binding = Binding({("c", "cpu"): "cpu:H1", ("c", "net"): "net:L1"})
        assert binding.resource_id("c", "cpu") == "cpu:H1"
        with pytest.raises(ModelError):
            binding.resource_id("c", "disk")

    def test_empty_resource_id_rejected(self):
        with pytest.raises(ModelError):
            Binding({("c", "cpu"): ""})

    def test_bind_requirement_rewrites_keys(self):
        binding = Binding({("c", "cpu"): "cpu:H1", ("c", "net"): "net:L1"})
        bound = binding.bind_requirement("c", ResourceVector(cpu=10, net=5))
        assert bound == ResourceVector({"cpu:H1": 10, "net:L1": 5})

    def test_bind_requirement_sums_shared_resources(self):
        binding = Binding({("c", "cpu"): "pool", ("c", "gpu"): "pool"})
        bound = binding.bind_requirement("c", ResourceVector(cpu=10, gpu=5))
        assert bound == ResourceVector({"pool": 15})

    def test_resource_ids(self):
        binding = Binding({("c", "cpu"): "cpu:H1", ("d", "cpu"): "cpu:H1"})
        assert binding.resource_ids() == frozenset({"cpu:H1"})
