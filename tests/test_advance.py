"""Tests for advance (book-ahead) reservations -- the §6 extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.brokers import AdvanceRegistry, TimelineBroker
from repro.core import BasicPlanner, build_qrg
from repro.core.errors import AdmissionError, BrokerError


class TestTimelineBroker:
    def test_initial_availability_everywhere(self):
        broker = TimelineBroker("cpu:H1", 100.0)
        assert broker.available_at(0.0) == 100.0
        assert broker.available_at(1e6) == 100.0
        assert broker.available_over(5.0, 500.0) == 100.0

    def test_capacity_positive(self):
        with pytest.raises(BrokerError):
            TimelineBroker("cpu:H1", 0.0)

    def test_booking_occupies_exact_window(self):
        broker = TimelineBroker("cpu:H1", 100.0)
        broker.reserve(30.0, "s1", start=10.0, end=20.0)
        assert broker.available_at(9.99) == 100.0
        assert broker.available_at(10.0) == 70.0
        assert broker.available_at(19.99) == 70.0
        assert broker.available_at(20.0) == 100.0

    def test_window_min_over_overlaps(self):
        broker = TimelineBroker("cpu:H1", 100.0)
        broker.reserve(30.0, "s1", 0.0, 10.0)
        broker.reserve(50.0, "s2", 5.0, 15.0)
        assert broker.available_over(0.0, 5.0) == 70.0
        assert broker.available_over(5.0, 10.0) == 20.0  # both overlap
        assert broker.available_over(10.0, 15.0) == 50.0
        assert broker.available_over(0.0, 15.0) == 20.0

    def test_admission_over_whole_window(self):
        broker = TimelineBroker("cpu:H1", 100.0)
        broker.reserve(80.0, "s1", 10.0, 12.0)  # narrow spike
        # a long booking crossing the spike must respect the spike
        with pytest.raises(AdmissionError):
            broker.reserve(30.0, "s2", 0.0, 100.0)
        broker.reserve(20.0, "s2", 0.0, 100.0)

    def test_rejected_booking_leaves_no_trace(self):
        broker = TimelineBroker("cpu:H1", 100.0)
        broker.reserve(90.0, "s1", 0.0, 10.0)
        with pytest.raises(AdmissionError):
            broker.reserve(20.0, "s2", 5.0, 15.0)
        assert broker.available_over(10.0, 15.0) == 100.0
        assert broker.outstanding() == 1

    def test_cancel_restores_window(self):
        broker = TimelineBroker("cpu:H1", 100.0)
        reservation = broker.reserve(40.0, "s1", 5.0, 9.0)
        broker.cancel(reservation)
        assert broker.available_over(0.0, 20.0) == 100.0
        assert broker.outstanding() == 0
        with pytest.raises(BrokerError, match="double cancel"):
            broker.cancel(reservation)

    def test_empty_window_rejected(self):
        broker = TimelineBroker("cpu:H1", 100.0)
        with pytest.raises(BrokerError):
            broker.reserve(10.0, "s1", 5.0, 5.0)
        with pytest.raises(BrokerError):
            broker.available_over(7.0, 3.0)

    def test_adjacent_bookings_do_not_interact(self):
        broker = TimelineBroker("cpu:H1", 100.0)
        broker.reserve(100.0, "s1", 0.0, 10.0)
        broker.reserve(100.0, "s2", 10.0, 20.0)  # half-open: no overlap
        assert broker.available_at(10.0) == 0.0
        assert broker.available_over(0.0, 20.0) == 0.0

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(0, 90), st.floats(1, 30), st.floats(1.0, 30.0)
            ),
            min_size=1,
            max_size=15,
        )
    )
    def test_timeline_matches_naive_model(self, bookings):
        """Property: the step-function timeline equals a brute-force sum."""
        broker = TimelineBroker("r", 1000.0)
        accepted = []
        for start, span, amount in bookings:
            end = start + span
            try:
                broker.reserve(amount, "s", start, end)
                accepted.append((start, end, amount))
            except AdmissionError:  # pragma: no cover - capacity is ample
                pass
        for probe in np.linspace(0.0, 130.0, 53):
            naive = sum(a for s, e, a in accepted if s <= probe < e)
            assert broker.load_at(float(probe)) == pytest.approx(naive)


class TestAdvancePlanning:
    def test_plan_against_future_window(self, small_service, small_binding):
        """The unchanged planners plan advance reservations off a
        windowed snapshot -- the compositionality the extension targets."""
        registry = AdvanceRegistry()
        registry.register(TimelineBroker("cpu:H1", 100.0))
        registry.register(TimelineBroker("net:L1", 100.0))
        # The network is busy tomorrow 10-20 but free later.
        registry.broker("net:L1").reserve(90.0, "other", 10.0, 20.0)

        busy = registry.snapshot(["cpu:H1", "net:L1"], 10.0, 20.0)
        qrg_busy = build_qrg(small_service, small_binding, busy)
        plan_busy = BasicPlanner().plan(qrg_busy)
        assert plan_busy.end_to_end_label == "Qg"  # only the cheap level fits

        free = registry.snapshot(["cpu:H1", "net:L1"], 30.0, 40.0)
        qrg_free = build_qrg(small_service, small_binding, free)
        plan_free = BasicPlanner().plan(qrg_free)
        assert plan_free.end_to_end_label == "Qf"

    def test_reserve_plan_transactionally(self, small_service, small_binding):
        registry = AdvanceRegistry()
        registry.register(TimelineBroker("cpu:H1", 100.0))
        registry.register(TimelineBroker("net:L1", 25.0))
        snapshot = registry.snapshot(["cpu:H1", "net:L1"], 0.0, 10.0)
        plan = BasicPlanner().plan(build_qrg(small_service, small_binding, snapshot))
        made = registry.reserve_plan(plan, "s1", 0.0, 10.0)
        assert len(made) == 2
        # the same window can no longer fit a second identical session
        with pytest.raises(AdmissionError):
            registry.reserve_plan(plan, "s2", 5.0, 15.0)
        # but a disjoint future window can
        later = registry.reserve_plan(plan, "s3", 10.0, 20.0)
        registry.cancel_all(made + later)
        assert registry.broker("net:L1").available_over(0, 100) == 25.0

    def test_rollback_on_partial_failure(self, small_service, small_binding):
        registry = AdvanceRegistry()
        registry.register(TimelineBroker("cpu:H1", 100.0))
        registry.register(TimelineBroker("net:L1", 100.0))
        snapshot = registry.snapshot(["cpu:H1", "net:L1"], 0.0, 10.0)
        plan = BasicPlanner().plan(build_qrg(small_service, small_binding, snapshot))
        # Squeeze the net for the target window after planning.
        registry.broker("net:L1").reserve(95.0, "squeeze", 0.0, 10.0)
        with pytest.raises(AdmissionError):
            registry.reserve_plan(plan, "s1", 0.0, 10.0)
        assert registry.broker("cpu:H1").available_over(0.0, 10.0) == 100.0

    def test_registry_duplicate_and_missing(self):
        registry = AdvanceRegistry()
        broker = TimelineBroker("cpu:H1", 10.0)
        registry.register(broker)
        assert "cpu:H1" in registry
        with pytest.raises(BrokerError):
            registry.register(broker)
        with pytest.raises(BrokerError):
            registry.broker("ghost")
