"""Cross-process timeline stitching and the schema-v4 golden.

``stitch_traces`` joins a client-side trace document and a daemon-side
one (typically a flight-recorder dump) purely by trace id; the report's
``complete`` flag -- no client request left without daemon-side
telemetry -- is the PR's acceptance gate, so these tests pin its edge
cases: orphans on both sides, request-id/session back-fill, and the CLI
wrapper's exit codes.
"""

import json
from pathlib import Path

import pytest

from repro.obs import analyze
from repro.obs.analyze import TraceDocument, stitch_traces
from repro.obs.cli import main
from repro.obs.export import TRACE_SCHEMA_VERSION

GOLDEN_V4 = str(Path(__file__).parent / "data" / "trace_v4_golden.json")


def make_doc(spans=(), events=()):
    return TraceDocument.from_dict(
        {
            "schema_version": TRACE_SCHEMA_VERSION,
            "spans": list(spans),
            "events": list(events),
        }
    )


def client_span(trace_id, *, request_id=None, session=None, index=0):
    span = {
        "name": "client.request",
        "start": 0.0,
        "duration": 0.01,
        "depth": 0,
        "index": index,
        "parent": None,
        "attributes": {} if session is None else {"session": session},
        "trace_id": trace_id,
    }
    if request_id is not None:
        span["request_id"] = request_id
    return span


def daemon_event(trace_id, *, kind="session.admitted", session="s-1"):
    return {
        "kind": kind,
        "seq": 0,
        "session": session,
        "trace_id": trace_id,
        "request_id": "req-d",
    }


# ---------------------------------------------------------------------------
# the v4 golden


def test_golden_v4_still_loads():
    """Schema v4 documents (trace-context era) stay loadable forever."""
    payload = json.loads(Path(GOLDEN_V4).read_text())
    assert payload["schema_version"] == 4
    doc = analyze.load_trace(GOLDEN_V4)
    assert doc.spans and doc.events
    # v4's defining feature: spans and events carry trace/request ids.
    assert all("trace_id" in span for span in doc.spans)
    assert all(event.trace_id for event in doc.events)
    # It is a flight-recorder dump: meta + wire counters survive loading.
    assert payload["meta"]["flight_recorder"] is True
    assert payload["wire"]["requests"] > 0


def test_golden_v4_self_stitches():
    """A flight dump stitches against itself (daemon spans and events)."""
    doc = analyze.load_trace(GOLDEN_V4)
    report = stitch_traces(doc, doc)
    assert report.complete
    assert report.timelines
    for timeline in report.timelines:
        assert timeline.daemon_events


# ---------------------------------------------------------------------------
# stitch_traces unit behavior


def test_stitch_links_by_trace_id():
    client = make_doc(spans=[client_span("a" * 32, request_id="req-1")])
    daemon = make_doc(events=[daemon_event("a" * 32)])
    report = stitch_traces(client, daemon)
    assert report.complete
    assert len(report.timelines) == 1
    timeline = report.timelines[0]
    assert timeline.trace_id == "a" * 32
    assert timeline.request_id == "req-1"
    assert timeline.session == "s-1"  # back-filled from the daemon event
    assert timeline.outcome == "admitted"


def test_orphan_client_breaks_completeness():
    client = make_doc(
        spans=[
            client_span("a" * 32, index=0),
            client_span("b" * 32, index=1),
        ]
    )
    daemon = make_doc(events=[daemon_event("a" * 32)])
    report = stitch_traces(client, daemon)
    assert not report.complete
    assert report.orphan_client == ["b" * 32]
    assert len(report.timelines) == 1


def test_orphan_daemon_does_not_break_completeness():
    client = make_doc(spans=[client_span("a" * 32)])
    daemon = make_doc(
        events=[daemon_event("a" * 32), daemon_event("c" * 32, session="s-2")]
    )
    report = stitch_traces(client, daemon)
    assert report.complete
    assert report.orphan_daemon == ["c" * 32]


def test_unstamped_spans_are_ignored():
    unstamped = client_span("x")
    del unstamped["trace_id"]
    report = stitch_traces(make_doc(spans=[unstamped]), make_doc())
    assert report.complete and not report.timelines


def test_stitch_report_serializes():
    client = make_doc(spans=[client_span("a" * 32, request_id="req-1")])
    daemon = make_doc(events=[daemon_event("a" * 32)])
    payload = stitch_traces(client, daemon).to_dict()
    assert payload["schema"] == "stitched-trace/1"
    assert payload["complete"] is True
    assert payload["requests"][0]["trace_id"] == "a" * 32
    json.dumps(payload)  # JSON-clean


# ---------------------------------------------------------------------------
# the CLI wrapper


def test_cli_stitch_prints_table_and_writes_report(tmp_path, capsys):
    out_path = tmp_path / "stitched.json"
    assert main(["stitch", GOLDEN_V4, GOLDEN_V4, "-o", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "stitched" in out
    report = json.loads(out_path.read_text())
    assert report["schema"] == "stitched-trace/1"
    assert report["complete"] is True


def test_cli_stitch_require_complete_fails_on_orphans(tmp_path, capsys):
    client = {
        "schema_version": TRACE_SCHEMA_VERSION,
        "spans": [client_span("f" * 32, request_id="req-orphan")],
        "events": [],
    }
    client_path = tmp_path / "client.json"
    client_path.write_text(json.dumps(client))
    empty_path = tmp_path / "daemon.json"
    empty_path.write_text(
        json.dumps({"schema_version": TRACE_SCHEMA_VERSION, "spans": [], "events": []})
    )
    assert main(["stitch", str(client_path), str(empty_path)]) == 0
    assert (
        main(
            ["stitch", str(client_path), str(empty_path), "--require-complete"]
        )
        == 1
    )
    assert "INCOMPLETE" in capsys.readouterr().out
