"""GridEnvironment variants: custom topologies and service substitutions."""

import pytest

from repro.core import BasicPlanner
from repro.core.errors import ModelError
from repro.des import Environment, RandomStreams
from repro.network import Domain, Host, Link, Topology
from repro.sim.environment import GridEnvironment
from repro.sim.services import compressed_service_families


class TestCustomServices:
    def test_compressed_families_plug_in(self):
        families = compressed_service_families(3.0)
        services = {name: family.build_service(name) for name, family in families.items()}
        grid = GridEnvironment(Environment(), RandomStreams(0), services=services)
        assert set(grid.model_store.names()) == {"S1", "S2", "S3", "S4"}
        result = grid.coordinator.establish(
            "s1", "S1", grid.binding_for("S1", "D5"), BasicPlanner(),
        )
        assert result.success
        grid.coordinator.teardown("s1")
        grid.registry.assert_quiescent()


class TestCustomTopology:
    def build_two_host_topology(self):
        hosts = [Host("H1"), Host("H2"), Host("H3"), Host("H4")]
        domains = [Domain(f"D{i}", proxy_host=f"H{(i + 1) // 2}") for i in range(1, 9)]
        links = []
        # a sparse ring instead of the full mesh: H1-H2-H3-H4-H1
        for index, (a, b) in enumerate(
            [("H1", "H2"), ("H2", "H3"), ("H3", "H4"), ("H4", "H1")], start=1
        ):
            links.append(Link(f"L{index}", a, b))
        for i in range(1, 9):
            links.append(Link(f"L{i + 4}", f"H{(i + 1) // 2}", f"D{i}"))
        return Topology(hosts, domains, links)

    def test_multi_hop_paths_on_sparse_topology(self):
        """On a ring, some server->proxy routes traverse 2 links; the
        two-level path broker must aggregate them."""
        grid = GridEnvironment(
            Environment(), RandomStreams(1), topology=self.build_two_host_topology()
        )
        # H1 -> H3 is two hops on the ring
        broker = grid.path_brokers["net:H1-H3"]
        assert len(broker.links) == 2
        # reserving on the path broker loads both physical links
        reservation = broker.reserve(10.0, "s1")
        assert all(link.available == link.capacity - 10.0 for link in broker.links)
        broker.release(reservation)

    def test_sessions_run_on_sparse_topology(self):
        grid = GridEnvironment(
            Environment(), RandomStreams(1), topology=self.build_two_host_topology()
        )
        result = grid.coordinator.establish(
            "s1", "S3", grid.binding_for("S3", "D1"), BasicPlanner(),
        )
        assert result.success
        grid.coordinator.teardown("s1")
        grid.registry.assert_quiescent()

    def test_shared_links_are_doubly_loaded(self):
        """Two sessions whose routes share a physical link both charge it."""
        grid = GridEnvironment(
            Environment(), RandomStreams(1), topology=self.build_two_host_topology()
        )
        # On the ring, net:H1-H3 (via H2) and net:H1-H2 share link H1-H2.
        shared = grid.topology.link_between("H1", "H2")
        link_broker = grid.link_brokers[shared.link_id]
        before = link_broker.available
        r1 = grid.path_brokers["net:H1-H3"].reserve(10.0, "a")
        r2 = grid.path_brokers["net:H1-H2"].reserve(5.0, "b")
        assert link_broker.available == before - 15.0
        grid.path_brokers["net:H1-H3"].release(r1)
        grid.path_brokers["net:H1-H2"].release(r2)
