"""Request-scoped trace contexts: parsing, propagation, and stamping.

The W3C-style ``traceparent`` parser must be lenient (malformed input is
a *fresh root*, never an error), the contextvar plumbing must isolate
concurrent asyncio tasks, and the automatic stamping must put the bound
trace id on every span and event recorded while the context is live --
and on nothing recorded outside it.
"""

import asyncio

import pytest

from repro.obs import context as obs_context
from repro.obs.context import (
    TraceContext,
    bind_trace_context,
    child_context,
    current_trace_context,
    new_trace_context,
    parse_traceparent,
    reset_trace_context,
    trace_context,
)
from repro.obs.events import EventLog
from repro.obs.trace import Tracer

# ---------------------------------------------------------------------------
# traceparent parsing


def test_new_context_roundtrips_through_traceparent():
    root = new_trace_context(request_id="req-1")
    assert len(root.trace_id) == 32 and len(root.span_id) == 16
    parsed = parse_traceparent(root.traceparent())
    assert parsed is not None
    assert parsed.trace_id == root.trace_id
    assert parsed.parent_id == root.span_id
    # The continuation gets its own span id.
    assert parsed.span_id != root.span_id


def test_child_context_stays_in_trace():
    root = new_trace_context(request_id="req-2")
    child = child_context(root, request_id=root.request_id)
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    assert child.span_id != root.span_id
    assert child.request_id == "req-2"


@pytest.mark.parametrize(
    "header",
    [
        None,
        "",
        "garbage",
        "00-abc-def",  # too few parts
        "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # all-zero trace id
        "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # all-zero parent id
        "00-" + "a" * 31 + "-" + "1" * 16 + "-01",  # short trace id
        "00-" + "g" * 32 + "-" + "1" * 16 + "-01",  # non-hex trace id
        "ff-" + "a" * 32 + "-" + "1" * 16 + "-01",  # forbidden version
        "zz-" + "a" * 32 + "-" + "1" * 16 + "-01",  # non-hex version
        "00-" + "a" * 32 + "-" + "1" * 16 + "-0g",  # non-hex flags
        "00-" + "a" * 32 + "-" + "1" * 16,  # truncated (no flags)
        42,  # not a string at all
    ],
)
def test_malformed_traceparent_parses_to_none(header):
    assert parse_traceparent(header) is None


def test_future_version_still_parses():
    # Per W3C, unknown (non-ff) versions parse with best effort.
    header = "01-" + "a" * 32 + "-" + "b" * 16 + "-00"
    parsed = parse_traceparent(header)
    assert parsed is not None and parsed.trace_id == "a" * 32


# ---------------------------------------------------------------------------
# binding


def test_bind_and_reset():
    assert current_trace_context() is None
    context = new_trace_context(request_id="r")
    token = bind_trace_context(context)
    try:
        assert current_trace_context() is context
    finally:
        reset_trace_context(token)
    assert current_trace_context() is None


def test_context_manager_binds_for_the_block():
    context = new_trace_context()
    with trace_context(context):
        assert current_trace_context() is context
    assert current_trace_context() is None


def test_concurrent_tasks_see_their_own_context():
    async def scenario():
        seen = {}

        async def worker(name):
            with trace_context(new_trace_context(request_id=name)):
                await asyncio.sleep(0.001)
                seen[name] = current_trace_context().request_id
                await asyncio.sleep(0.001)

        await asyncio.gather(*(worker(f"task-{i}") for i in range(8)))
        assert seen == {f"task-{i}": f"task-{i}" for i in range(8)}

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# stamping


def test_spans_and_events_stamp_the_bound_context():
    tracer = Tracer()
    log = EventLog()
    context = new_trace_context(request_id="req-9")
    with trace_context(context):
        with tracer.span("inside"):
            pass
        log.emit("session.admitted", session="s-1")
    with tracer.span("outside"):
        pass
    log.emit("session.planned", session="s-1")

    inside, outside = tracer.records
    assert inside.trace_id == context.trace_id
    assert inside.request_id == "req-9"
    assert outside.trace_id is None and outside.request_id is None

    stamped, unstamped = log.records
    assert stamped.trace_id == context.trace_id
    assert stamped.request_id == "req-9"
    assert unstamped.trace_id is None

    # Serialized form only grows keys when stamped: v1-v3 documents from
    # un-contexted runs stay byte-identical.
    assert "trace_id" in stamped.to_dict()
    assert "trace_id" not in unstamped.to_dict()
    assert "trace_id" in inside.to_dict()
    assert "trace_id" not in outside.to_dict()


def test_tracer_ring_keeps_only_recent_spans():
    tracer = Tracer(capacity=4)
    for i in range(10):
        with tracer.span(f"s{i}"):
            pass
    assert [r.name for r in tracer.records] == ["s6", "s7", "s8", "s9"]


def test_records_for_trace_filters_by_id():
    tracer = Tracer()
    a, b = new_trace_context(), new_trace_context()
    for context in (a, b, a):
        with trace_context(context):
            with tracer.span("op"):
                pass
    assert len(tracer.records_for_trace(a.trace_id)) == 2
    assert len(tracer.records_for_trace(b.trace_id)) == 1


def test_headers_are_lowercase_wire_names():
    assert obs_context.TRACEPARENT_HEADER == "traceparent"
    assert obs_context.REQUEST_ID_HEADER == "x-request-id"
