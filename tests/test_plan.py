"""Tests for ReservationPlan and ComponentAssignment mechanics."""

import pytest

from repro.core import ModelError, QRGNode, ResourceVector
from repro.core.plan import ComponentAssignment, ReservationPlan, chain_path_signature
from repro.core.qrg import IntraEdge


def make_edge(component="c1", qin="Qa", qout="Qb", weight=0.5, resource="cpu:H1"):
    return IntraEdge(
        src=QRGNode(component, "in", qin),
        dst=QRGNode(component, "out", qout),
        requirement=ResourceVector(cpu=10),
        bound=ResourceVector({resource: 10.0}),
        weight=weight,
        bottleneck_resource=resource,
        alpha=1.0,
        per_resource={resource: weight},
    )


def make_plan(assignments):
    return ReservationPlan(
        service="svc",
        assignments=tuple(assignments),
        end_to_end_label="Qz",
        end_to_end_rank=0,
        numeric_level=3,
        psi=max(a.weight for a in assignments),
        bottleneck_resource=max(assignments, key=lambda a: a.weight).bottleneck_resource,
        bottleneck_alpha=1.0,
        path_signature=("Qa", "Qb"),
    )


class TestComponentAssignment:
    def test_from_edge(self):
        assignment = ComponentAssignment.from_edge(make_edge())
        assert assignment.component == "c1"
        assert assignment.qin_label == "Qa"
        assert assignment.qout_label == "Qb"
        assert assignment.weight == 0.5
        assert assignment.bound == ResourceVector({"cpu:H1": 10.0})


class TestReservationPlan:
    def test_requires_assignments(self):
        with pytest.raises(ModelError):
            ReservationPlan(
                service="svc",
                assignments=(),
                end_to_end_label="Q",
                end_to_end_rank=0,
                numeric_level=1,
                psi=0.0,
                bottleneck_resource="r",
                bottleneck_alpha=1.0,
            )

    def test_demand_sums_across_components_sharing_resources(self):
        a1 = ComponentAssignment.from_edge(make_edge("c1", resource="cpu:H1"))
        a2 = ComponentAssignment.from_edge(make_edge("c2", resource="cpu:H1"))
        a3 = ComponentAssignment.from_edge(make_edge("c3", resource="net:L1"))
        plan = make_plan([a1, a2, a3])
        assert dict(plan.demand) == {"cpu:H1": 20.0, "net:L1": 10.0}

    def test_signature_string(self):
        plan = make_plan([ComponentAssignment.from_edge(make_edge())])
        assert plan.signature_string() == "Qa-Qb"

    def test_chain_path_signature_helper(self):
        nodes = (QRGNode("c1", "in", "Qa"), QRGNode("c1", "out", "Qb"))
        assert chain_path_signature(nodes) == ("Qa", "Qb")

    def test_assignment_for_unknown_component(self):
        plan = make_plan([ComponentAssignment.from_edge(make_edge())])
        with pytest.raises(ModelError):
            plan.assignment_for("ghost")
