"""Property-based tests (hypothesis) on core data structures & invariants."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.brokers import LocalResourceBroker
from repro.core import (
    AvailabilitySnapshot,
    BasicPlanner,
    QoSVector,
    ResourceVector,
    build_qrg,
    enumerate_paths,
    minimax_dijkstra,
    path_bottleneck,
)
from repro.core.errors import AdmissionError
from repro.core.synthetic import random_availability, synthetic_chain
from repro.sim.services import _compress_values

# -- strategies ---------------------------------------------------------

param_names = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=4), min_size=1, max_size=4, unique=True
)
values = st.integers(min_value=0, max_value=100)


@st.composite
def qos_vector_pairs(draw):
    names = draw(param_names)
    a = QoSVector({n: draw(values) for n in names})
    b = QoSVector({n: draw(values) for n in names})
    return a, b


@st.composite
def resource_vectors(draw):
    names = draw(param_names)
    return ResourceVector({n: float(draw(st.integers(0, 1000))) for n in names})


class TestPartialOrderLaws:
    @given(qos_vector_pairs())
    def test_reflexive(self, pair):
        a, _b = pair
        assert a <= a and a >= a

    @given(qos_vector_pairs())
    def test_antisymmetric(self, pair):
        a, b = pair
        if a <= b and b <= a:
            assert a == b

    @given(qos_vector_pairs(), values)
    def test_transitive(self, pair, bump):
        a, b = pair
        if a <= b:
            c = QoSVector({k: v + bump for k, v in b.items()})
            assert a <= c

    @given(qos_vector_pairs())
    def test_strict_order_consistency(self, pair):
        a, b = pair
        assert (a < b) == (a <= b and a != b)
        assert (a > b) == (b < a)


class TestResourceVectorLaws:
    @given(resource_vectors(), st.floats(min_value=0.1, max_value=100.0))
    def test_scaling_preserves_order(self, vector, factor):
        scaled = vector.scaled(factor)
        for name in vector:
            assert scaled[name] == pytest.approx(vector[name] * factor)

    @given(resource_vectors())
    def test_merged_sum_commutes(self, vector):
        other = ResourceVector({next(iter(vector)): 5.0})
        assert vector.merged_sum(other) == other.merged_sum(vector)

    @given(resource_vectors())
    def test_contention_bottleneck_is_argmax(self, vector):
        availability = {name: 1000.0 for name in vector}
        report = vector.contention(availability)
        assert report.psi == max(report.per_resource.values())
        assert report.per_resource[report.bottleneck_resource] == report.psi


class TestMinimaxOptimality:
    """The paper's central claim: the selected path minimises the
    bottleneck contention index among all feasible paths to the sink."""

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 10_000))
    def test_planner_on_random_chain_services(self, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(2, 5))
        q = int(rng.integers(2, 4))
        service, binding, snapshot = synthetic_chain(k, q, rng=rng, density=0.7)
        snapshot = random_availability(snapshot, rng, low=2.0, high=50.0)
        qrg = build_qrg(service, binding, snapshot)
        plan = BasicPlanner().plan(qrg)
        reachable = {}
        for sink in qrg.sink_nodes():
            paths = enumerate_paths(qrg.source_node, sink, qrg.successors)
            if paths:
                reachable[sink.label] = min(path_bottleneck(p) for p in paths)
        if plan is None:
            assert reachable == {}
            return
        # best reachable sink by ranking
        best = service.ranking.best(reachable)
        assert plan.end_to_end_label == best
        assert plan.psi == pytest.approx(reachable[best])
        # and every edge in the plan was feasible at snapshot time
        availability = snapshot.availability()
        for assignment in plan.assignments:
            assert assignment.bound.satisfiable_under(availability)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_minimax_distance_is_monotone_prefix(self, seed):
        """Along the chosen path, Dijkstra distances never decrease."""
        rng = np.random.default_rng(seed)
        service, binding, snapshot = synthetic_chain(3, 3, rng=rng)
        snapshot = random_availability(snapshot, rng, low=2.0, high=50.0)
        qrg = build_qrg(service, binding, snapshot)
        result = minimax_dijkstra(qrg.source_node, qrg.successors)
        for sink in qrg.sink_nodes():
            if not result.reachable(sink):
                continue
            path = result.path_to(sink)
            distances = [result.distance[node] for node in path]
            assert distances == sorted(distances)


class TestBrokerAccountingLaws:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from(["reserve", "release"]), st.floats(1.0, 40.0)),
            min_size=1,
            max_size=30,
        )
    )
    def test_reserve_release_never_corrupts_accounting(self, operations):
        broker = LocalResourceBroker("H1", "cpu", 100.0)
        held = []
        for op, amount in operations:
            if op == "reserve":
                try:
                    held.append(broker.reserve(amount, "s"))
                except AdmissionError:
                    pass
            elif held:
                broker.release(held.pop())
            assert 0.0 <= broker.reserved <= broker.capacity + 1e-9
            assert broker.available + broker.reserved == pytest.approx(broker.capacity)
            assert broker.outstanding() == len(held)
        for reservation in held:
            broker.release(reservation)
        assert broker.available == pytest.approx(100.0)


class TestCompressionLaws:
    @settings(max_examples=60)
    @given(
        st.lists(st.floats(min_value=0.5, max_value=100.0), min_size=1, max_size=12),
        st.floats(min_value=1.0, max_value=10.0),
    )
    def test_compress_preserves_mean_and_caps_ratio(self, values_list, ratio):
        compressed = _compress_values(values_list, ratio)
        assert sum(compressed) / len(compressed) == pytest.approx(
            sum(values_list) / len(values_list)
        )
        if len(compressed) > 1 and min(compressed) > 0:
            assert max(compressed) / min(compressed) <= ratio + 1e-9

    @settings(max_examples=60)
    @given(
        st.lists(
            st.floats(min_value=0.5, max_value=100.0), min_size=2, max_size=12, unique=True
        )
    )
    def test_compress_preserves_rank_order(self, values_list):
        compressed = _compress_values(values_list, 3.0)
        original_order = sorted(range(len(values_list)), key=lambda i: values_list[i])
        new_order = sorted(range(len(compressed)), key=lambda i: compressed[i])
        assert original_order == new_order


class TestTradeoffPolicyLaws:
    """Hypothesis checks of the §4.3.1 policy over random services."""

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000), st.floats(min_value=0.05, max_value=1.5))
    def test_tradeoff_rank_and_budget_laws(self, seed, alpha):
        from repro.core import BasicPlanner, TradeoffPlanner, sink_report
        from repro.core.resources import ResourceObservation

        rng = np.random.default_rng(seed)
        service, binding, snapshot = synthetic_chain(3, 3, rng=rng)
        amounts = {rid: float(rng.uniform(5.0, 60.0)) for rid in snapshot}
        observations = {
            rid: ResourceObservation(available=amount, alpha=alpha)
            for rid, amount in amounts.items()
        }
        qrg = build_qrg(service, binding, AvailabilitySnapshot(observations))
        basic_plan = BasicPlanner().plan(qrg)
        tradeoff_plan = TradeoffPlanner().plan(qrg)
        if basic_plan is None:
            assert tradeoff_plan is None
            return
        assert tradeoff_plan is not None
        # law 1: tradeoff never claims a better level than basic
        assert tradeoff_plan.end_to_end_rank >= basic_plan.end_to_end_rank
        if alpha >= 1.0:
            # law 2: with no downtrend, the choices coincide
            assert tradeoff_plan.end_to_end_label == basic_plan.end_to_end_label
            assert tradeoff_plan.psi == pytest.approx(basic_plan.psi)
        else:
            # law 3: the choice satisfies the budget, or is the most
            # conservative reachable sink (documented fallback)
            budget = alpha * basic_plan.psi
            rows = sink_report(qrg)
            min_psi = min(psi for _label, psi, _alpha in rows)
            assert (
                tradeoff_plan.psi <= budget + 1e-9
                or tradeoff_plan.psi == pytest.approx(min_psi)
            )


class TestMonotoneIndexInvariance:
    """Basic plans are invariant under monotone transforms of req/avail.

    The paper's footnote 2 allows alternative psi definitions; for the
    basic algorithm, any definition that is a strictly increasing
    function of the utilisation ratio produces identical plans, because
    per-edge argmaxes and path-max comparisons are order-preserved.
    """

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_plans_identical_across_monotone_indices(self, seed):
        from repro.core import headroom_contention_index, log_contention_index

        rng = np.random.default_rng(seed)
        service, binding, snapshot = synthetic_chain(3, 3, rng=rng)
        snapshot = random_availability(snapshot, rng, low=5.0, high=60.0)
        plans = []
        for index in (None, headroom_contention_index, log_contention_index):
            kwargs = {} if index is None else {"contention_index": index}
            qrg = build_qrg(service, binding, snapshot, **kwargs)
            plans.append(BasicPlanner().plan(qrg))
        if plans[0] is None:
            assert all(plan is None for plan in plans)
            return
        signatures = {plan.signature_string() for plan in plans}
        assert len(signatures) == 1, signatures
        labels = {plan.end_to_end_label for plan in plans}
        assert len(labels) == 1
