"""Tests for DAG planning: two-pass heuristic vs exhaustive oracle."""

import numpy as np
import pytest

from repro.core import ExhaustiveDagPlanner, TwoPassDagPlanner, build_qrg
from repro.core.synthetic import (
    random_availability,
    synthetic_chain,
    synthetic_diamond_dag,
)


class TestOnChains:
    def test_agrees_with_exhaustive_on_random_chains(self):
        rng = np.random.default_rng(11)
        heuristic, exact = TwoPassDagPlanner(), ExhaustiveDagPlanner()
        for _ in range(25):
            service, binding, snapshot = synthetic_chain(3, 3, rng=rng)
            snapshot = random_availability(snapshot, rng, low=3, high=40)
            qrg = build_qrg(service, binding, snapshot)
            plan_h, plan_e = heuristic.plan(qrg), exact.plan(qrg)
            if plan_e is None:
                assert plan_h is None
                continue
            # On a chain the two-pass heuristic IS the basic algorithm:
            # it must match the optimum exactly.
            assert plan_h is not None
            assert plan_h.end_to_end_label == plan_e.end_to_end_label
            assert plan_h.psi == pytest.approx(plan_e.psi)


class TestOnDiamonds:
    def test_heuristic_never_beats_optimum_and_matches_sink_mostly(self):
        rng = np.random.default_rng(5)
        heuristic, exact = TwoPassDagPlanner(), ExhaustiveDagPlanner()
        feasible = 0
        optimal_sink = 0
        for _ in range(40):
            service, binding, snapshot = synthetic_diamond_dag(2, 2, rng=rng)
            snapshot = random_availability(snapshot, rng, low=3, high=50)
            qrg = build_qrg(service, binding, snapshot)
            plan_e = exact.plan(qrg)
            plan_h = heuristic.plan(qrg)
            if plan_e is None:
                # pass-I reachability implies embeddability on diamonds,
                # so the heuristic cannot invent a plan
                assert plan_h is None
                continue
            if plan_h is None:
                continue  # paper limitation (1)
            feasible += 1
            rank_h = service.ranking.rank(plan_h.end_to_end_label)
            rank_e = service.ranking.rank(plan_e.end_to_end_label)
            assert rank_h >= rank_e  # never claims better than optimal
            if rank_h == rank_e:
                optimal_sink += 1
                assert plan_h.psi >= plan_e.psi - 1e-12
        assert feasible > 20
        assert optimal_sink / max(feasible, 1) > 0.8

    def test_plan_is_consistent_embedding(self):
        rng = np.random.default_rng(9)
        service, binding, snapshot = synthetic_diamond_dag(3, 2, rng=rng)
        qrg = build_qrg(service, binding, snapshot)
        plan = TwoPassDagPlanner().plan(qrg)
        assert plan is not None
        # one assignment per component
        assert {a.component for a in plan.assignments} == set(service.graph.nodes)
        # fan-out output equivalent to each branch input
        fan = plan.assignment_for("fan")
        fan_out_level = service.component("fan").output_level(fan.qout_label)
        for branch in service.graph.downstreams("fan"):
            branch_in = plan.assignment_for(branch).qin_label
            level = service.component(branch).input_level(branch_in)
            assert level.vector == fan_out_level.vector
        # fan-in input is the concatenation of branch outputs
        sink_in = plan.assignment_for("sink").qin_label
        expected = "|".join(
            plan.assignment_for(f"br{b}").qout_label for b in range(3)
        )
        assert sink_in == expected

    def test_psi_equals_max_assignment_weight(self):
        rng = np.random.default_rng(13)
        service, binding, snapshot = synthetic_diamond_dag(2, 3, rng=rng)
        qrg = build_qrg(service, binding, snapshot)
        plan = TwoPassDagPlanner().plan(qrg)
        assert plan.psi == pytest.approx(max(a.weight for a in plan.assignments))

    def test_infeasible_returns_none(self):
        rng = np.random.default_rng(1)
        service, binding, snapshot = synthetic_diamond_dag(2, 2, rng=rng)
        starved = random_availability(snapshot, rng, low=0.01, high=0.02)
        qrg = build_qrg(service, binding, starved)
        assert TwoPassDagPlanner().plan(qrg) is None
        assert ExhaustiveDagPlanner().plan(qrg) is None


class TestNonConvergenceResolution:
    def test_fan_out_resolution_picks_lowest_contention(self):
        """Reproduce figure 8's scenario: branches prefer different
        fan-out outputs; resolution picks the output whose worst edge to
        the fixed branch outputs is smallest."""
        from repro.core import (
            AvailabilitySnapshot,
            Binding,
            DependencyGraph,
            DistributedService,
            QoSLevel,
            QoSRanking,
            QoSVector,
            ServiceComponent,
            TabularTranslation,
            concat_levels,
        )

        lv = lambda label, **v: QoSLevel(label, QoSVector(v))
        src_level = lv("S", q=9)
        # fan-out outputs Qh, Qi
        fan = ServiceComponent(
            "fan", (src_level,), (lv("Qh", f=2), lv("Qi", f=1)),
            TabularTranslation({("S", "Qh"): {"rf": 1}, ("S", "Qi"): {"rf": 1}}),
        )
        # branch X: from Qh cheap, from Qi expensive (prefers Qh)
        x = ServiceComponent(
            "x", (lv("Xh", f=2), lv("Xi", f=1)), (lv("Qn", a=1),),
            TabularTranslation({("Xh", "Qn"): {"rx": 10}, ("Xi", "Qn"): {"rx": 30}}),
        )
        # branch Y: from Qi cheap, from Qh expensive (prefers Qi)
        y = ServiceComponent(
            "y", (lv("Yh", f=2), lv("Yi", f=1)), (lv("Qp", b=1),),
            TabularTranslation({("Yh", "Qp"): {"ry": 35}, ("Yi", "Qp"): {"ry": 10}}),
        )
        fanin_level = concat_levels([lv("Qn", a=1), lv("Qp", b=1)])
        sink = ServiceComponent(
            "sink", (fanin_level,), (lv("Qv", e=1),),
            TabularTranslation({(fanin_level.label, "Qv"): {"rs": 1}}),
        )
        graph = DependencyGraph(
            ["fan", "x", "y", "sink"],
            [("fan", "x"), ("fan", "y"), ("x", "sink"), ("y", "sink")],
        )
        service = DistributedService("fig8", [fan, x, y, sink], graph, QoSRanking(["Qv"]))
        binding = Binding(
            {("fan", "rf"): "RF", ("x", "rx"): "RX", ("y", "ry"): "RY", ("sink", "rs"): "RS"}
        )
        snapshot = AvailabilitySnapshot.from_amounts(
            {"RF": 100, "RX": 100, "RY": 100, "RS": 100}
        )
        qrg = build_qrg(service, binding, snapshot)
        plan = TwoPassDagPlanner().plan(qrg)
        assert plan is not None
        # From Qh: worst edge is y's 35/100; from Qi: worst is x's 30/100.
        # The local policy must choose Qi (0.30 < 0.35) -- figure 8's logic.
        assert plan.assignment_for("fan").qout_label == "Qi"
        assert plan.psi == pytest.approx(0.30)
        # and it matches the exhaustive optimum here
        exact = ExhaustiveDagPlanner().plan(qrg)
        assert exact.psi == pytest.approx(plan.psi)
