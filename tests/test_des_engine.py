"""Tests for the DES engine: clock, scheduling, run modes."""

import pytest

from repro.des import Environment, Event, EventStatus, SimulationError, Timeout
from repro.des.engine import EmptySchedule


class TestClock:
    def test_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_time_advances_with_timeouts(self):
        env = Environment()
        env.timeout(3.0)
        env.run()
        assert env.now == 3.0

    def test_run_until_number_advances_clock_even_when_idle(self):
        env = Environment()
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_until_past_raises(self):
        env = Environment(initial_time=5.0)
        with pytest.raises(ValueError):
            env.run(until=1.0)


class TestEvents:
    def test_event_lifecycle(self):
        env = Environment()
        event = env.event()
        assert event.status is EventStatus.PENDING
        assert not event.triggered
        event.succeed("payload")
        assert event.triggered and not event.processed
        env.run()
        assert event.processed
        assert event.value == "payload"

    def test_value_before_trigger_raises(self):
        env = Environment()
        with pytest.raises(RuntimeError):
            env.event().value

    def test_double_succeed_raises(self):
        env = Environment()
        event = env.event()
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_failed_event_raises_on_value(self):
        env = Environment()
        event = env.event()
        event.fail(ValueError("boom"))
        event.defuse()
        env.run()
        with pytest.raises(ValueError):
            event.value

    def test_unhandled_failure_propagates_from_run(self):
        env = Environment()
        env.event().fail(RuntimeError("unobserved"))
        with pytest.raises(RuntimeError, match="unobserved"):
            env.run()

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_timeout_carries_value(self):
        env = Environment()
        timeout = env.timeout(1.0, value="tick")
        env.run()
        assert timeout.value == "tick"


class TestOrdering:
    def test_events_fire_in_time_order(self):
        env = Environment()
        order = []
        for delay in (5.0, 1.0, 3.0):
            env.timeout(delay).callbacks.append(lambda _e, d=delay: order.append(d))
        env.run()
        assert order == [1.0, 3.0, 5.0]

    def test_same_time_events_fire_in_insertion_order(self):
        env = Environment()
        order = []
        for tag in "abc":
            env.timeout(1.0).callbacks.append(lambda _e, t=tag: order.append(t))
        env.run()
        assert order == ["a", "b", "c"]

    def test_run_until_number_excludes_later_events(self):
        env = Environment()
        fired = []
        env.timeout(1.0).callbacks.append(lambda _e: fired.append(1))
        env.timeout(9.0).callbacks.append(lambda _e: fired.append(9))
        env.run(until=5.0)
        assert fired == [1]

    def test_step_on_empty_schedule_raises(self):
        with pytest.raises(EmptySchedule):
            Environment().step()

    def test_peek(self):
        env = Environment()
        assert env.peek() == float("inf")
        env.timeout(2.5)
        assert env.peek() == 2.5


class TestRunUntilEvent:
    def test_returns_event_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(4)
            return "done"

        process = env.process(proc(env))
        assert env.run(until=process) == "done"
        assert env.now == 4.0

    def test_raises_event_exception(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1)
            raise KeyError("inside")

        process = env.process(proc(env))
        with pytest.raises(KeyError):
            env.run(until=process)

    def test_unreachable_event_raises_simulation_error(self):
        env = Environment()
        never = env.event()
        with pytest.raises(SimulationError):
            env.run(until=never)


class TestConditions:
    def test_all_of_waits_for_every_event(self):
        env = Environment()

        def proc(env):
            t1, t2 = env.timeout(1, "a"), env.timeout(3, "b")
            result = yield env.all_of([t1, t2])
            return (env.now, sorted(result.values()))

        process = env.process(proc(env))
        assert env.run(until=process) == (3.0, ["a", "b"])

    def test_any_of_fires_on_first(self):
        env = Environment()

        def proc(env):
            result = yield env.any_of([env.timeout(5, "slow"), env.timeout(1, "fast")])
            return (env.now, list(result.values()))

        process = env.process(proc(env))
        assert env.run(until=process) == (1.0, ["fast"])

    def test_empty_condition_fires_immediately(self):
        env = Environment()

        def proc(env):
            result = yield env.all_of([])
            return result

        process = env.process(proc(env))
        assert env.run(until=process) == {}

    def test_condition_rejects_foreign_events(self):
        env_a, env_b = Environment(), Environment()
        with pytest.raises(ValueError):
            env_a.all_of([env_b.timeout(1)])
