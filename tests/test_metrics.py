"""Tests for metrics collection."""

import pytest

from repro.core.plan import ComponentAssignment, ReservationPlan
from repro.core.resources import ResourceVector
from repro.runtime.session import SessionOutcome
from repro.sim.metrics import ClassBreakdown, MetricsCollector, PathCensus


def make_plan(signature=("Qa", "Qb"), bottleneck="net:L1", level=3):
    assignment = ComponentAssignment(
        component="c1",
        qin_label="Qa",
        qout_label="Qb",
        requirement=ResourceVector(cpu=1),
        bound=ResourceVector({"cpu:H1": 1.0}),
        weight=0.5,
        bottleneck_resource=bottleneck,
        alpha=1.0,
    )
    return ReservationPlan(
        service="S1",
        assignments=(assignment,),
        end_to_end_label="Qp",
        end_to_end_rank=0,
        numeric_level=level,
        psi=0.5,
        bottleneck_resource=bottleneck,
        bottleneck_alpha=1.0,
        path_signature=signature,
    )


def outcome(success=True, level=3, scale=1.0, duration=30.0, service="S1", plan=None, reason=None):
    return SessionOutcome(
        session_id="s",
        service=service,
        arrived_at=0.0,
        success=success,
        qos_level=level if success else None,
        plan=plan if plan is not None else (make_plan(level=level) if success else None),
        reason=reason or ("completed" if success else "no_feasible_plan"),
        duration=duration,
        demand_scale=scale,
    )


class TestMetricsCollector:
    def test_success_rate_and_qos(self):
        collector = MetricsCollector()
        collector.record(outcome(success=True, level=3))
        collector.record(outcome(success=True, level=2))
        collector.record(outcome(success=False))
        assert collector.attempts == 3
        assert collector.success_rate == pytest.approx(2 / 3)
        assert collector.avg_qos_level == pytest.approx(2.5)

    def test_empty_collector(self):
        collector = MetricsCollector()
        assert collector.success_rate == 0.0
        assert collector.avg_qos_level == 0.0

    def test_failure_reasons_counted(self):
        collector = MetricsCollector()
        collector.record(outcome(success=False, reason="no_feasible_plan"))
        collector.record(outcome(success=False, reason="admission_failed"))
        collector.record(outcome(success=False, reason="admission_failed"))
        snap = collector.snapshot()
        assert snap.failure_reasons == {"no_feasible_plan": 1, "admission_failed": 2}

    def test_census_uses_family_map(self):
        collector = MetricsCollector(family_of_service={"S1": "A"})
        collector.record(outcome(plan=make_plan(signature=("Qa", "Qb"))))
        collector.record(outcome(plan=make_plan(signature=("Qa", "Qb"))))
        collector.record(outcome(plan=make_plan(signature=("Qa", "Qc"))))
        rows = collector.paths.percentages("A")
        assert rows[0] == ("Qa-Qb", pytest.approx(200 / 3))

    def test_failed_with_plan_still_counts_selection(self):
        collector = MetricsCollector(family_of_service={"S1": "A"})
        collector.record(
            outcome(success=False, plan=make_plan(), reason="admission_failed")
        )
        assert collector.paths.total("A") == 1
        assert collector.bottlenecks["net:L1"] == 1

    def test_per_service_counts(self):
        collector = MetricsCollector()
        collector.record(outcome(service="S1"))
        collector.record(outcome(service="S2", success=False))
        snap = collector.snapshot()
        assert snap.per_service_attempts == {"S1": 1, "S2": 1}
        assert snap.per_service_successes == {"S1": 1}

    def test_keep_outcomes_flag(self):
        collector = MetricsCollector()
        collector.keep_outcomes = True
        collector.record(outcome())
        assert len(collector.outcomes) == 1


class TestClassBreakdown:
    def test_classification_matrix(self):
        breakdown = ClassBreakdown()
        breakdown.record(outcome(scale=1.0, duration=30.0))  # norm.-short
        breakdown.record(outcome(scale=1.0, duration=90.0))  # norm.-long
        breakdown.record(outcome(scale=2.0, duration=30.0, success=False))  # fat-short
        breakdown.record(outcome(scale=10.0, duration=90.0))  # fat-long
        rows = {name: (sr, qos, n) for name, sr, qos, n in breakdown.rows()}
        assert rows["norm.-short"] == (1.0, 3.0, 1)
        assert rows["fat-short"][0] == 0.0
        assert rows["fat-long"][2] == 1

    def test_boundary_at_60(self):
        breakdown = ClassBreakdown()
        breakdown.record(outcome(duration=60.0))  # not long (> 60 required)
        assert breakdown.stats("norm.-short").attempts == 1


class TestPathCensus:
    def test_percentages(self):
        census = PathCensus()
        census.record("A", "p1")
        census.record("A", "p1")
        census.record("A", "p2")
        census.record("B", "q1")
        assert census.percentage_of("A", "p1") == pytest.approx(200 / 3)
        assert census.percentage_of("A", "missing") == 0.0
        assert census.total("A") == 3
        assert census.total("C") == 0
        assert census.percentages("C") == []
