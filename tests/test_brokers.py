"""Tests for base/local/link brokers: accounting, admission, trends."""

import pytest

from repro.brokers import LinkBandwidthBroker, LocalResourceBroker
from repro.core.errors import AdmissionError, BrokerError


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestAccounting:
    def test_initial_state(self):
        broker = LocalResourceBroker("H1", "cpu", 100.0)
        assert broker.capacity == 100.0
        assert broker.available == 100.0
        assert broker.reserved == 0.0
        assert broker.outstanding() == 0
        assert broker.resource_id == "cpu:H1"

    def test_capacity_must_be_positive(self):
        with pytest.raises(BrokerError):
            LocalResourceBroker("H1", "cpu", 0.0)

    def test_reserve_and_release_roundtrip(self):
        broker = LocalResourceBroker("H1", "cpu", 100.0)
        reservation = broker.reserve(30.0, "ssn-1")
        assert broker.available == 70.0
        assert broker.outstanding() == 1
        assert reservation.amount == 30.0
        assert reservation.session_id == "ssn-1"
        broker.release(reservation)
        assert broker.available == 100.0
        assert broker.outstanding() == 0

    def test_invariant_available_plus_reserved_is_capacity(self):
        broker = LocalResourceBroker("H1", "cpu", 100.0)
        held = [broker.reserve(a, f"s{a}") for a in (10, 20, 30)]
        assert broker.available + broker.reserved == pytest.approx(100.0)
        for reservation in held:
            broker.release(reservation)
        assert broker.available == pytest.approx(100.0)

    def test_admission_control_rejects_over_request(self):
        broker = LocalResourceBroker("H1", "cpu", 100.0)
        broker.reserve(90.0, "s1")
        with pytest.raises(AdmissionError) as info:
            broker.reserve(20.0, "s2")
        assert info.value.resource_id == "cpu:H1"
        # rejected request must not change state
        assert broker.available == pytest.approx(10.0)
        assert broker.outstanding() == 1

    def test_exact_fit_admitted(self):
        broker = LocalResourceBroker("H1", "cpu", 100.0)
        broker.reserve(100.0, "s1")
        assert broker.available == pytest.approx(0.0)

    def test_nonpositive_amount_rejected(self):
        broker = LocalResourceBroker("H1", "cpu", 100.0)
        with pytest.raises(BrokerError):
            broker.reserve(0.0, "s1")

    def test_double_release_rejected(self):
        broker = LocalResourceBroker("H1", "cpu", 100.0)
        reservation = broker.reserve(10.0, "s1")
        broker.release(reservation)
        with pytest.raises(BrokerError, match="double release"):
            broker.release(reservation)

    def test_can_reserve(self):
        broker = LocalResourceBroker("H1", "cpu", 100.0)
        assert broker.can_reserve(100.0)
        assert not broker.can_reserve(100.1)
        assert not broker.can_reserve(0.0)

    def test_utilization(self):
        broker = LocalResourceBroker("H1", "cpu", 100.0)
        broker.reserve(25.0, "s1")
        assert broker.utilization() == pytest.approx(0.25)


class TestObservation:
    def test_observe_reports_current_availability(self):
        clock = FakeClock()
        broker = LocalResourceBroker("H1", "cpu", 100.0, clock=clock)
        broker.reserve(40.0, "s1")
        observation = broker.observe()
        assert observation.available == 60.0
        assert observation.observed_at == 0.0

    def test_alpha_starts_at_one(self):
        broker = LocalResourceBroker("H1", "cpu", 100.0)
        assert broker.observe().alpha == 1.0

    def test_alpha_reflects_downtrend(self):
        clock = FakeClock()
        broker = LocalResourceBroker("H1", "cpu", 100.0, clock=clock, trend_window=3.0)
        broker.observe()  # report 100 at t=0
        clock.now = 1.0
        broker.reserve(50.0, "s1")
        observation = broker.observe()  # avg of window = 100 -> alpha = 0.5
        assert observation.alpha == pytest.approx(0.5)

    def test_alpha_reflects_uptrend(self):
        clock = FakeClock()
        broker = LocalResourceBroker("H1", "cpu", 100.0, clock=clock, trend_window=3.0)
        reservation = broker.reserve(50.0, "s1")
        broker.observe()  # report 50
        clock.now = 1.0
        broker.release(reservation)
        assert broker.observe().alpha == pytest.approx(2.0)

    def test_alpha_window_expires(self):
        clock = FakeClock()
        broker = LocalResourceBroker("H1", "cpu", 100.0, clock=clock, trend_window=3.0)
        broker.reserve(50.0, "s1")
        broker.observe()  # report 50 at t=0
        clock.now = 10.0  # outside the window: no history
        assert broker.observe().alpha == 1.0

    def test_observe_stale_returns_past_value(self):
        clock = FakeClock()
        broker = LocalResourceBroker("H1", "cpu", 100.0, clock=clock)
        clock.now = 5.0
        broker.reserve(40.0, "s1")
        clock.now = 10.0
        stale = broker.observe_stale(4.0)
        assert stale.available == 100.0  # before the reservation
        assert stale.observed_at == 4.0
        fresh = broker.observe_stale(6.0)
        assert fresh.available == 60.0


class TestLinkBroker:
    def test_link_identity(self):
        link = LinkBandwidthBroker("L1", "H1", "H2", 100.0)
        assert link.resource_id == "link:L1"
        assert link.connects("H2", "H1")
        assert not link.connects("H1", "H3")

    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            LinkBandwidthBroker("L1", "H1", "H1", 100.0)

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            LinkBandwidthBroker("", "H1", "H2", 100.0)
