"""Tests for topology and routing substrate."""

import pytest

from repro.core.errors import ModelError
from repro.network import Domain, Host, Link, RoutingTable, Topology, build_figure9_topology


class TestFigure9:
    def test_counts_match_paper(self):
        topology = build_figure9_topology()
        assert len(topology.hosts) == 4
        assert len(topology.domains) == 8
        assert len(topology.links) == 14  # L1-L14

    def test_full_mesh_between_hosts(self):
        topology = build_figure9_topology()
        hosts = sorted(topology.hosts)
        for i, a in enumerate(hosts):
            for b in hosts[i + 1 :]:
                assert topology.link_between(a, b) is not None, (a, b)

    def test_domain_proxy_rule(self):
        topology = build_figure9_topology()
        # D_i's proxy is H_ceil(i/2)
        assert topology.domains["D1"].proxy_host == "H1"
        assert topology.domains["D2"].proxy_host == "H1"
        assert topology.domains["D3"].proxy_host == "H2"
        assert topology.domains["D8"].proxy_host == "H4"

    def test_each_domain_has_one_access_link(self):
        topology = build_figure9_topology()
        for name, domain in topology.domains.items():
            neighbors = topology.neighbors(name)
            assert len(neighbors) == 1
            assert neighbors[0][0] == domain.proxy_host


class TestTopologyValidation:
    def test_duplicate_host_rejected(self):
        with pytest.raises(ModelError):
            Topology([Host("H1"), Host("H1")], [], [])

    def test_domain_needs_known_proxy(self):
        with pytest.raises(ModelError):
            Topology([Host("H1")], [Domain("D1", "H9")], [])

    def test_link_endpoints_validated(self):
        with pytest.raises(ModelError):
            Topology([Host("H1")], [], [Link("L1", "H1", "H9")])

    def test_self_link_rejected(self):
        with pytest.raises(ModelError):
            Link("L1", "H1", "H1")

    def test_duplicate_link_id_rejected(self):
        with pytest.raises(ModelError):
            Topology(
                [Host("H1"), Host("H2")],
                [],
                [Link("L1", "H1", "H2"), Link("L1", "H2", "H1")],
            )

    def test_link_other_end(self):
        link = Link("L1", "A", "B")
        assert link.other_end("A") == "B"
        assert link.other_end("B") == "A"
        with pytest.raises(ModelError):
            link.other_end("C")

    def test_unknown_node_neighbors(self):
        topology = build_figure9_topology()
        with pytest.raises(ModelError):
            topology.neighbors("Mars")


class TestRouting:
    def test_direct_route(self):
        routing = RoutingTable(build_figure9_topology())
        route = routing.route("H1", "H2")
        assert len(route) == 1
        assert route[0].connects("H1", "H2")

    def test_domain_route_via_proxy(self):
        routing = RoutingTable(build_figure9_topology())
        route = routing.route("H3", "D1")  # H3 -> H1 -> D1
        assert len(route) == 2
        assert route[0].connects("H3", "H1")
        assert route[1].connects("H1", "D1")

    def test_self_route_is_empty(self):
        routing = RoutingTable(build_figure9_topology())
        assert routing.route("H1", "H1") == ()

    def test_route_is_cached_and_symmetric(self):
        routing = RoutingTable(build_figure9_topology())
        forward = routing.route("H1", "D8")
        backward = routing.route("D8", "H1")
        assert [l.link_id for l in backward] == [l.link_id for l in reversed(forward)]

    def test_unknown_node_raises(self):
        routing = RoutingTable(build_figure9_topology())
        with pytest.raises(ModelError):
            routing.route("H1", "Mars")
        with pytest.raises(ModelError):
            routing.route("Pluto", "Pluto")

    def test_no_route_raises(self):
        topology = Topology([Host("A"), Host("B")], [], [])
        with pytest.raises(ModelError, match="no route"):
            RoutingTable(topology).route("A", "B")

    def test_hop_count(self):
        routing = RoutingTable(build_figure9_topology())
        assert routing.hop_count("H1", "H4") == 1
        assert routing.hop_count("D1", "D2") == 2  # D1 -> H1 -> D2
